"""Tests for carrier sense (CSMA) on the broadcast channel."""


from repro.geo.position import Position
from repro.radio.channel import BroadcastChannel, RadioInterface
from repro.radio.frames import FrameKind
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


def make_channel():
    sim = Simulator()
    channel = BroadcastChannel(sim, RandomStreams(4))
    return sim, channel


def add_iface(channel, x, tx_range=400.0):
    iface = RadioInterface(lambda: Position(x, 0.0), tx_range)
    iface.attach(lambda f: None)
    channel.register(iface)
    return iface


def test_medium_idle_before_any_transmission():
    _sim, channel = make_channel()
    assert not channel.medium_busy(Position(0, 0))


def test_medium_busy_during_airtime_within_range():
    sim, channel = make_channel()
    sender = add_iface(channel, 0)
    sender.send(FrameKind.BEACON, "x")
    assert channel.medium_busy(Position(100, 0))
    assert channel.medium_busy(Position(400, 0))  # boundary inclusive


def test_medium_idle_outside_transmission_range():
    sim, channel = make_channel()
    sender = add_iface(channel, 0)
    sender.send(FrameKind.BEACON, "x")
    assert not channel.medium_busy(Position(500, 0))


def test_medium_clears_after_airtime():
    sim, channel = make_channel()
    sender = add_iface(channel, 0)
    sender.send(FrameKind.BEACON, "x")
    sim.run_until(channel.base_latency + 0.001)
    assert not channel.medium_busy(Position(100, 0))


def test_cbf_contender_defers_while_medium_busy():
    """A CBF contender whose timer expires during a peer transmission
    defers, receives the duplicate, and never re-broadcasts."""
    from repro.geo.areas import RectangularArea
    from repro.geo.position import PositionVector
    from repro.geonet.cbf import CbfForwarder
    from repro.geonet.config import GeoNetConfig
    from repro.geonet.packets import GbcBody, GeoBroadcastPacket
    from repro.security.ca import CertificateAuthority
    from repro.security.signing import sign
    import random

    sim = Simulator()
    config = GeoNetConfig(dist_max=1283.0, cbf_timer_jitter=0.0)
    body = GbcBody(
        source_addr=1,
        sequence_number=1,
        source_pv=PositionVector(Position(0, 0), 0.0, 0.0, 0.0),
        area=RectangularArea(-100, 5000, -50, 50),
        payload="x",
        lifetime=60.0,
        created_at=0.0,
    )
    packet = GeoBroadcastPacket(
        signed=sign(body, CertificateAuthority().enroll("s")),
        rhl=10,
        sender_addr=1,
        sender_position=Position(0, 0),
    )
    busy = {"flag": False}
    broadcasts = []
    cbf = CbfForwarder(
        sim=sim,
        config=config,
        get_position=lambda: Position(300, 0),
        deliver=lambda p: None,
        broadcast=lambda p, rhl: broadcasts.append(rhl),
        rng=random.Random(1),
        medium_busy=lambda: busy["flag"],
    )
    cbf.handle_broadcast(packet)
    busy["flag"] = True  # someone else is on the air at expiry time
    sim.run_until(0.09)  # past the base timer (~77 ms): deferring
    assert broadcasts == []
    assert cbf.stats.csma_defers >= 1
    # The in-flight transmission turns out to be a duplicate: cancel.
    duplicate = packet.next_hop_copy(
        rhl=9, sender_addr=2, sender_position=Position(400, 0)
    )
    cbf.handle_broadcast(duplicate)
    busy["flag"] = False
    sim.run_until(0.5)
    assert broadcasts == []
    assert cbf.stats.suppressed_by_duplicate == 1


def test_cbf_defer_is_bounded():
    """A permanently busy medium cannot park a packet forever."""
    from repro.geo.areas import RectangularArea
    from repro.geo.position import PositionVector
    from repro.geonet.cbf import _MAX_CSMA_DEFERS, CbfForwarder
    from repro.geonet.config import GeoNetConfig
    from repro.geonet.packets import GbcBody, GeoBroadcastPacket
    from repro.security.ca import CertificateAuthority
    from repro.security.signing import sign

    sim = Simulator()
    config = GeoNetConfig(dist_max=1283.0)
    body = GbcBody(
        source_addr=1,
        sequence_number=1,
        source_pv=PositionVector(Position(0, 0), 0.0, 0.0, 0.0),
        area=RectangularArea(-100, 5000, -50, 50),
        payload="x",
        lifetime=60.0,
        created_at=0.0,
    )
    packet = GeoBroadcastPacket(
        signed=sign(body, CertificateAuthority().enroll("s")),
        rhl=10,
        sender_addr=1,
        sender_position=Position(0, 0),
    )
    broadcasts = []
    cbf = CbfForwarder(
        sim=sim,
        config=config,
        get_position=lambda: Position(300, 0),
        deliver=lambda p: None,
        broadcast=lambda p, rhl: broadcasts.append(rhl),
        medium_busy=lambda: True,  # pathologically busy forever
    )
    cbf.handle_broadcast(packet)
    sim.run_until(5.0)
    # After the defer cap the copy is dropped as a terminal channel-access
    # failure (cbf-defer-exhausted) rather than transmitted into a medium
    # known to be busy — either way the buffer cannot park it forever.
    assert broadcasts == []
    assert cbf.stats.csma_defers == _MAX_CSMA_DEFERS
    assert cbf.stats.csma_defer_exhaustions == 1
    assert not cbf._buffers
