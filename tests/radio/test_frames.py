"""Tests for access-layer frames."""

import pytest

from repro.geo.position import Position
from repro.radio.frames import Frame, FrameKind


def make_frame(**kwargs):
    defaults = dict(
        kind=FrameKind.BEACON,
        sender_addr=1,
        payload="p",
        tx_position=Position(0, 0),
        tx_range=100.0,
        tx_time=0.0,
    )
    defaults.update(kwargs)
    return Frame(**defaults)


def test_broadcast_flag():
    assert make_frame().is_broadcast
    assert not make_frame(dest_addr=7).is_broadcast


def test_frame_ids_are_unique_and_increasing():
    a, b = make_frame(), make_frame()
    assert a.frame_id != b.frame_id
    assert b.frame_id > a.frame_id


def test_frame_is_immutable():
    frame = make_frame()
    with pytest.raises(AttributeError):
        frame.tx_range = 5.0


def test_frame_kinds_distinct():
    assert len({k.value for k in FrameKind}) == 3
