"""Behavior tests for channel delivery semantics, run against both the
spatial-grid receiver lookup and the linear-scan fallback.

These pin the delivery rules the spatial-index refactor must preserve:
unicast vs promiscuous overhearing, the asymmetric ``link_range`` override,
obstruction predicates, loss-rate fading, delivery ordering, and the
swap-remove membership bookkeeping.
"""

import pytest

from repro.geo.position import Position
from repro.radio.channel import BroadcastChannel, RadioInterface
from repro.radio.frames import FrameKind
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


@pytest.fixture(params=[True, False], ids=["grid", "scan"])
def use_grid(request):
    return request.param


def make_channel(use_grid, **kwargs):
    sim = Simulator()
    channel = BroadcastChannel(
        sim, RandomStreams(1), use_spatial_index=use_grid, **kwargs
    )
    return sim, channel


def make_iface(channel, x, y=0.0, tx_range=100.0, **kwargs):
    iface = RadioInterface(lambda: Position(x, y), tx_range, **kwargs)
    received = []
    iface.attach(received.append)
    channel.register(iface)
    return iface, received


# ----------------------------------------------------------------------
# unicast vs promiscuous overhearing
# ----------------------------------------------------------------------
def test_unicast_reaches_addressee_only(use_grid):
    sim, channel = make_channel(use_grid)
    sender, _ = make_iface(channel, 0)
    target, target_rx = make_iface(channel, 50)
    _other, other_rx = make_iface(channel, 60)
    sender.send(FrameKind.GEO_UNICAST, "p", dest_addr=target.address)
    sim.run_until(1.0)
    assert [f.payload for f in target_rx] == ["p"]
    assert other_rx == []


def test_promiscuous_overhears_unicast_but_range_still_applies(use_grid):
    sim, channel = make_channel(use_grid)
    sender, _ = make_iface(channel, 0)
    target, target_rx = make_iface(channel, 50)
    _near_sniffer, near_sniffed = make_iface(channel, 20, promiscuous=True)
    _far_sniffer, far_sniffed = make_iface(channel, 150, promiscuous=True)
    sender.send(FrameKind.GEO_UNICAST, "secret", dest_addr=target.address)
    sim.run_until(1.0)
    assert len(target_rx) == 1
    assert [f.payload for f in near_sniffed] == ["secret"]
    assert far_sniffed == []  # promiscuity is not extra range


def test_unicast_to_out_of_range_target_counted_lost(use_grid):
    sim, channel = make_channel(use_grid)
    sender, _ = make_iface(channel, 0, tx_range=100.0)
    _target, target_rx = make_iface(channel, 200)
    sender.send(FrameKind.GEO_UNICAST, "p", dest_addr=_target.address)
    sim.run_until(1.0)
    assert target_rx == []
    assert channel.stats.unicast_lost == 1


# ----------------------------------------------------------------------
# link_range override asymmetry
# ----------------------------------------------------------------------
def test_mast_override_extends_reception_beyond_sender_range(use_grid):
    """A mast hears a weak sender far beyond the sender's tx range —
    the grid must find it outside the frame's own search radius."""
    sim, channel = make_channel(use_grid)
    sender, _ = make_iface(channel, 0, tx_range=100.0)
    _mast, mast_rx = make_iface(channel, 800, link_range=1000.0)
    sender.send(FrameKind.BEACON, "x")
    sim.run_until(1.0)
    assert len(mast_rx) == 1


def test_weak_override_limits_reception_below_sender_range(use_grid):
    """The worst-NLoS attacker's short link applies toward it too."""
    sim, channel = make_channel(use_grid)
    sender, _ = make_iface(channel, 0, tx_range=486.0)
    _weak, weak_rx = make_iface(channel, 400, link_range=327.0)
    _vehicle, vehicle_rx = make_iface(channel, 400, tx_range=486.0)
    sender.send(FrameKind.BEACON, "x")
    sim.run_until(1.0)
    assert weak_rx == []  # 400 > 327: override blocks
    assert len(vehicle_rx) == 1  # plain vehicle at same spot hears it


def test_override_applies_per_receiver_not_globally(use_grid):
    """One mast must not widen anyone else's ears."""
    sim, channel = make_channel(use_grid)
    sender, _ = make_iface(channel, 0, tx_range=100.0)
    _mast, mast_rx = make_iface(channel, 900, link_range=1000.0)
    _vehicle, vehicle_rx = make_iface(channel, 150, tx_range=100.0)
    sender.send(FrameKind.BEACON, "x")
    sim.run_until(1.0)
    assert len(mast_rx) == 1
    assert vehicle_rx == []  # 150 > 100 and no override of its own


def test_unregistering_mast_restores_narrow_search(use_grid):
    """Removing the largest override must shrink the override bookkeeping
    (regression guard for the incremental max tracking)."""
    sim, channel = make_channel(use_grid)
    sender, _ = make_iface(channel, 0, tx_range=100.0)
    mast, mast_rx = make_iface(channel, 800, link_range=1000.0)
    small_mast, small_rx = make_iface(channel, 300, link_range=400.0)
    channel.unregister(mast)
    sender.send(FrameKind.BEACON, "x")
    sim.run_until(1.0)
    assert mast_rx == []
    assert len(small_rx) == 1  # the smaller override still works
    assert channel._max_override == 400.0


# ----------------------------------------------------------------------
# obstruction predicates
# ----------------------------------------------------------------------
def test_obstruction_blocks_link_both_modes(use_grid):
    sim, channel = make_channel(use_grid)
    channel.add_obstruction(lambda a, b: (a.x - 50) * (b.x - 50) < 0)
    sender, _ = make_iface(channel, 0)
    _blocked, blocked_rx = make_iface(channel, 80)
    _same_side, same_rx = make_iface(channel, 40)
    sender.send(FrameKind.BEACON, "x")
    sim.run_until(1.0)
    assert blocked_rx == []
    assert len(same_rx) == 1


def test_any_of_multiple_obstructions_blocks(use_grid):
    sim, channel = make_channel(use_grid)
    channel.add_obstruction(lambda a, b: False)
    channel.add_obstruction(lambda a, b: abs(a.x - b.x) > 30)
    sender, _ = make_iface(channel, 0)
    _near, near_rx = make_iface(channel, 20)
    _far, far_rx = make_iface(channel, 40)
    sender.send(FrameKind.BEACON, "x")
    sim.run_until(1.0)
    assert len(near_rx) == 1
    assert far_rx == []


# ----------------------------------------------------------------------
# loss-rate fading
# ----------------------------------------------------------------------
def test_loss_rate_fades_some_deliveries(use_grid):
    sim, channel = make_channel(use_grid, loss_rate=0.5)
    sender, _ = make_iface(channel, 0)
    receivers = [make_iface(channel, 10 + i)[1] for i in range(40)]
    for _ in range(5):
        sender.send(FrameKind.BEACON, "x")
    sim.run_until(1.0)
    delivered = sum(len(rx) for rx in receivers)
    assert channel.stats.frames_faded > 0
    assert delivered + channel.stats.frames_faded == 200
    assert 0 < delivered < 200  # some lost, some through


def test_loss_draws_are_deterministic_across_modes():
    """Same seed ⇒ the exact same frames fade with grid and scan."""
    outcomes = []
    for use_grid in (True, False):
        sim, channel = make_channel(use_grid, loss_rate=0.3)
        sender, _ = make_iface(channel, 0)
        receivers = [make_iface(channel, 5 * (i + 1))[1] for i in range(15)]
        for _ in range(10):
            sender.send(FrameKind.BEACON, "x")
        sim.run_until(1.0)
        outcomes.append(
            (channel.stats.frames_faded, [len(rx) for rx in receivers])
        )
    assert outcomes[0] == outcomes[1]


# ----------------------------------------------------------------------
# ordering and membership bookkeeping
# ----------------------------------------------------------------------
def test_delivery_order_is_registration_order(use_grid):
    """With zero jitter all deliveries share a timestamp, so the engine
    fires them in scheduling order — which must be registration order."""
    sim, channel = make_channel(use_grid, latency_jitter=0.0)
    sender, _ = make_iface(channel, 0)
    order = []
    ifaces = []
    # Register across several grid cells, deliberately not sorted by x.
    for label, x in (("d", 90.0), ("a", 10.0), ("c", 70.0), ("b", 40.0)):
        iface = RadioInterface(lambda x=x: Position(x, 0.0), 100.0)
        iface.attach(lambda f, label=label: order.append(label))
        channel.register(iface)
        ifaces.append(iface)
    sender.send(FrameKind.BEACON, "x")
    sim.run_until(1.0)
    assert order == ["d", "a", "c", "b"]


def test_delivery_order_survives_swap_remove(use_grid):
    """unregister() swap-removes from the interface list; delivery order
    must still follow original registration order."""
    sim, channel = make_channel(use_grid, latency_jitter=0.0)
    sender, _ = make_iface(channel, 0)
    order = []

    def reg(label, x):
        iface = RadioInterface(lambda: Position(x, 0.0), 100.0)
        iface.attach(lambda f, label=label: order.append(label))
        channel.register(iface)
        return iface

    a, b, c, d = reg("a", 10), reg("b", 20), reg("c", 30), reg("d", 40)
    channel.unregister(b)  # swap-remove moves d into b's slot
    reg("e", 50)
    sender.send(FrameKind.BEACON, "x")
    sim.run_until(1.0)
    assert order == ["a", "c", "d", "e"]


def test_interfaces_property_in_registration_order(use_grid):
    _sim, channel = make_channel(use_grid)
    a, _ = make_iface(channel, 0)
    b, _ = make_iface(channel, 10)
    c, _ = make_iface(channel, 20)
    channel.unregister(a)
    assert channel.interfaces == (b, c)
    d, _ = make_iface(channel, 30)
    assert channel.interfaces == (b, c, d)


def test_reregistration_after_unregister(use_grid):
    sim, channel = make_channel(use_grid)
    sender, _ = make_iface(channel, 0)
    iface, received = make_iface(channel, 10)
    channel.unregister(iface)
    channel.register(iface)
    sender.send(FrameKind.BEACON, "x")
    sim.run_until(1.0)
    assert len(received) == 1


def test_unregister_twice_is_noop(use_grid):
    _sim, channel = make_channel(use_grid)
    iface, _ = make_iface(channel, 0)
    channel.unregister(iface)
    channel.unregister(iface)  # must not raise
    assert len(channel.interfaces) == 0


# ----------------------------------------------------------------------
# grid-specific mechanics
# ----------------------------------------------------------------------
def test_moving_interface_is_retracked_after_invalidation(use_grid):
    sim, channel = make_channel(use_grid)
    pos = {"x": 0.0}
    mover = RadioInterface(lambda: Position(pos["x"], 0.0), 100.0)
    mover_rx = []
    mover.attach(mover_rx.append)
    channel.register(mover)
    sender, _ = make_iface(channel, 3000.0, tx_range=100.0)
    sender.send(FrameKind.BEACON, "one")
    sim.run_until(0.01)
    assert mover_rx == []
    # Cross many grid cells in one hop, as a teleporting test double would.
    pos["x"] = 2950.0
    channel.invalidate_positions()
    sender.send(FrameKind.BEACON, "two")
    sim.run_until(0.02)
    assert [f.payload for f in mover_rx] == ["two"]


def test_per_frame_tx_range_beyond_cell_size(use_grid):
    """A frame's tx_range may exceed the grid cell size; the multi-ring
    query keeps the result exact."""
    sim, channel = make_channel(use_grid, cell_size=100.0)
    sender, _ = make_iface(channel, 0, tx_range=100.0)
    _far, far_rx = make_iface(channel, 1500.0)
    _beyond, beyond_rx = make_iface(channel, 2500.0)
    sender.send(FrameKind.BEACON, "boost", tx_range=2000.0)
    sim.run_until(1.0)
    assert len(far_rx) == 1
    assert beyond_rx == []


def test_neighbors_within_matches_geometry(use_grid):
    _sim, channel = make_channel(use_grid)
    ifaces = [make_iface(channel, 100.0 * i)[0] for i in range(10)]
    got = channel.neighbors_within(Position(450.0, 0.0), 160.0)
    assert got == [ifaces[3], ifaces[4], ifaces[5], ifaces[6]]


def test_neighbors_within_ignores_link_overrides(use_grid):
    """neighbors_within is a pure geometric query: a mast's link_range
    must not inflate its distance-based membership."""
    _sim, channel = make_channel(use_grid)
    make_iface(channel, 0)
    mast, _ = make_iface(channel, 500.0, link_range=5000.0)
    got = channel.neighbors_within(Position(0.0, 0.0), 100.0)
    assert mast not in got
    assert len(got) == 1


def test_stats_candidate_counter_advances(use_grid):
    sim, channel = make_channel(use_grid)
    sender, _ = make_iface(channel, 0)
    make_iface(channel, 10)
    make_iface(channel, 20)
    sender.send(FrameKind.BEACON, "x")
    sim.run_until(1.0)
    assert channel.stats.frames_sent == 1
    assert channel.stats.receiver_candidates >= 2
    assert channel.stats.mean_receivers_per_frame == 2.0


# ----------------------------------------------------------------------
# carrier sense (heap-based active transmission tracking)
# ----------------------------------------------------------------------
def test_medium_busy_during_and_idle_after_transmission(use_grid):
    sim, channel = make_channel(use_grid)
    sender, _ = make_iface(channel, 0)
    sender.send(FrameKind.BEACON, "x")
    assert channel.medium_busy(Position(50.0, 0.0))
    assert not channel.medium_busy(Position(5000.0, 0.0))  # out of range
    sim.run_until(1.0)  # well past the 0.5 ms airtime
    assert not channel.medium_busy(Position(50.0, 0.0))


def test_medium_busy_expires_staggered_transmissions_in_order(use_grid):
    sim, channel = make_channel(use_grid)
    a, _ = make_iface(channel, 0)
    b, _ = make_iface(channel, 10)
    # Two staggered transmissions; the heap must expire them independently.
    a.send(FrameKind.BEACON, "x")
    sim.run_until(0.0003)
    b.send(FrameKind.BEACON, "y")
    assert channel.medium_busy(Position(5.0, 0.0))
    sim.run_until(0.0006)  # a's airtime over, b's still active
    assert channel.medium_busy(Position(5.0, 0.0))
    sim.run_until(0.01)
    assert not channel.medium_busy(Position(5.0, 0.0))
    assert channel._active_tx == []  # heap fully drained
