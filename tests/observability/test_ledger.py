"""Unit tests for the packet-lifecycle ledger."""

from repro.observability import (
    DROP_REASONS,
    OUTCOMES,
    PacketLedger,
    reasons,
)


def test_taxonomy_is_complete_and_ordered():
    assert OUTCOMES[0] == reasons.DELIVERED
    assert set(OUTCOMES) == {reasons.DELIVERED, *DROP_REASONS}
    assert len(OUTCOMES) == len(set(OUTCOMES))


def test_untracked_events_are_ignored():
    ledger = PacketLedger()
    ledger.delivered("gbc", (1, 1), 0.5, 9)
    ledger.dropped("gbc", (1, 1), 0.5, 9, reasons.RHL_EXHAUSTED)
    ledger.hop("gbc", (1, 1), 0.5, 9, "gf-forward")
    assert len(ledger) == 0
    assert ledger.outcome_totals() == {}


def test_delivered_wins_over_any_drop():
    ledger = PacketLedger()
    ledger.originated("gbc", (1, 1), 0.0, 1)
    ledger.dropped("gbc", (1, 1), 0.1, 2, reasons.CBF_SUPPRESSED)
    ledger.delivered("gbc", (1, 1), 0.2, 3)
    ledger.dropped("gbc", (1, 1), 0.3, 4, reasons.LIFETIME_EXPIRED)
    record = ledger.record("gbc", (1, 1))
    assert record.outcome == reasons.DELIVERED
    assert record.first_delivery == 0.2
    # the copy-level tallies survive for flood analyses
    assert record.drops[reasons.CBF_SUPPRESSED] == 1
    assert record.drops[reasons.LIFETIME_EXPIRED] == 1


def test_chronologically_first_drop_is_the_outcome():
    ledger = PacketLedger()
    ledger.originated("gbc", (1, 1), 0.0, 1)
    ledger.dropped("gbc", (1, 1), 0.5, 2, reasons.RHL_EXHAUSTED)
    # an earlier-timestamped drop reported later still wins
    ledger.dropped("gbc", (1, 1), 0.2, 3, reasons.UNREACHABLE_NEXT_HOP)
    assert ledger.record("gbc", (1, 1)).outcome == reasons.UNREACHABLE_NEXT_HOP


def test_unresolved_packet_lands_in_the_conservation_bucket():
    ledger = PacketLedger()
    ledger.originated("gbc", (1, 1), 0.0, 1)
    assert ledger.record("gbc", (1, 1)).outcome == reasons.IN_FLIGHT_AT_END


def test_gbc_and_guc_namespaces_do_not_collide():
    ledger = PacketLedger()
    ledger.originated("gbc", (1, 1), 0.0, 1)
    ledger.originated("guc", (1, 1), 0.0, 1)
    ledger.delivered("guc", (1, 1), 0.5, 2)
    assert ledger.record("gbc", (1, 1)).outcome == reasons.IN_FLIGHT_AT_END
    assert ledger.record("guc", (1, 1)).outcome == reasons.DELIVERED


def test_outcome_totals_conserve_originations():
    ledger = PacketLedger()
    ledger.originated("gbc", (1, 1), 0.0, 1)
    ledger.originated("gbc", (1, 2), 1.0, 1)
    ledger.originated("gbc", (2, 1), 2.0, 2)
    ledger.delivered("gbc", (1, 1), 1.5, 9)
    ledger.dropped("gbc", (1, 2), 2.5, 9, reasons.LS_FAILURE)
    totals = ledger.outcome_totals()
    assert sum(totals.values()) == len(ledger) == 3
    assert totals == {
        reasons.DELIVERED: 1,
        reasons.LS_FAILURE: 1,
        reasons.IN_FLIGHT_AT_END: 1,
    }


def test_journeys_are_off_by_default():
    ledger = PacketLedger()
    ledger.originated("gbc", (1, 1), 0.0, 1)
    ledger.hop("gbc", (1, 1), 0.1, 2, "gf-forward", detail="next-hop=3")
    assert ledger.journey("gbc", (1, 1)) == []


def test_journeys_record_the_full_hop_sequence():
    ledger = PacketLedger(journeys=True)
    ledger.originated("gbc", (1, 1), 0.0, 1)
    ledger.hop("gbc", (1, 1), 0.1, 1, "gf-forward", detail="next-hop=2")
    ledger.dropped(
        "gbc", (1, 1), 0.2, 1, reasons.UNREACHABLE_NEXT_HOP, detail="out-of-range"
    )
    events = ledger.journey("gbc", (1, 1))
    assert [e.action for e in events] == [
        "originated",
        "gf-forward",
        "dropped:unreachable-next-hop",
    ]
    assert "next-hop=2" in events[1].line()


def test_copy_drop_totals_count_every_copy():
    ledger = PacketLedger()
    ledger.originated("gbc", (1, 1), 0.0, 1)
    for _ in range(3):
        ledger.dropped("gbc", (1, 1), 0.5, 2, reasons.CBF_SUPPRESSED)
    assert ledger.copy_drop_totals() == {reasons.CBF_SUPPRESSED: 3}
    # ...but the packet still has exactly one terminal outcome
    assert sum(ledger.outcome_totals().values()) == 1
