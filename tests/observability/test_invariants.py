"""The runtime invariant checker: passes on health, fails on corruption.

Every test here corrupts one specific piece of simulator state by hand and
asserts the checker names it — the checker's job is to turn silent
corruption into a loud, diagnosable crash.
"""

import dataclasses
import math

import pytest

from repro.geo.position import Position
from repro.observability import PacketLedger, reasons
from repro.observability.invariants import InvariantChecker, InvariantViolation
from repro.sim.events import FireOnce


def make_checker(tb, nodes=(), *, ledger=None):
    return InvariantChecker(
        tb.sim,
        iter_nodes=lambda: list(nodes),
        channel=tb.channel,
        ledger=ledger,
    )


# ----------------------------------------------------------------------
# healthy worlds pass
# ----------------------------------------------------------------------
def test_healthy_testbed_passes_and_counts_sweeps(testbed):
    ledger = PacketLedger()
    nodes = testbed.chain(3, 200.0, ledger=ledger)
    checker = make_checker(testbed, nodes, ledger=ledger)
    testbed.warm_up(8.0)
    checker.run()
    checker.run()
    assert checker.checks_run == 2
    assert checker.last_checked_at == testbed.sim.now


def test_shut_down_nodes_are_skipped(testbed):
    nodes = testbed.chain(2, 200.0)
    testbed.warm_up(5.0)
    nodes[1].shutdown()
    # a shut-down node's state is torn down; auditing it would misfire
    checker = make_checker(testbed, nodes)
    checker.run()
    assert checker.checks_run == 1


# ----------------------------------------------------------------------
# event queue
# ----------------------------------------------------------------------
def test_detects_past_due_event(testbed):
    testbed.warm_up(5.0)
    sim = testbed.sim
    sim._heap.append((sim.now - 5.0, 0, 10**9, FireOnce(lambda: None, ())))
    with pytest.raises(InvariantViolation, match="due in the past"):
        InvariantChecker(sim).run()


def test_detects_nan_time_event(testbed):
    testbed.warm_up(5.0)
    sim = testbed.sim
    sim._heap.append((float("nan"), 0, 10**9, FireOnce(lambda: None, ())))
    with pytest.raises(InvariantViolation, match="NaN-time"):
        InvariantChecker(sim).run()


def test_detects_duplicate_sequence_numbers(testbed):
    testbed.warm_up(5.0)
    sim = testbed.sim
    far = sim.now + 1000.0
    sim._heap.append((far, 0, 10**9, FireOnce(lambda: None, ())))
    sim._heap.append((far + 1.0, 0, 10**9, FireOnce(lambda: None, ())))
    with pytest.raises(InvariantViolation, match="duplicate sequence"):
        InvariantChecker(sim).run()


def test_detects_broken_heap_property(testbed):
    testbed.chain(2, 100.0)
    testbed.warm_up(5.0)
    sim = testbed.sim
    assert len(sim._heap) >= 1
    # an entry sorting before its parent: due now with an absurd priority
    sim._heap.append((sim.now, -(10**6), 10**9, FireOnce(lambda: None, ())))
    with pytest.raises(InvariantViolation, match="heap property"):
        InvariantChecker(sim).run()


# ----------------------------------------------------------------------
# location table
# ----------------------------------------------------------------------
def _neighbor_entry(testbed):
    a, b = testbed.chain(2, 100.0)
    testbed.warm_up(8.0)
    entry = a.router.loct._entries[b.address]
    return a, b, entry


def test_detects_loct_entry_updated_in_the_future(testbed):
    a, _b, entry = _neighbor_entry(testbed)
    entry.updated_at = testbed.sim.now + 100.0
    with pytest.raises(InvariantViolation, match="updated in the future"):
        make_checker(testbed, [a]).run()


def test_detects_loct_expiry_ttl_mismatch(testbed):
    a, _b, entry = _neighbor_entry(testbed)
    entry.expires_at += 5.0
    with pytest.raises(InvariantViolation, match="expiry inconsistent"):
        make_checker(testbed, [a]).run()


def test_detects_loct_non_finite_position(testbed):
    a, _b, entry = _neighbor_entry(testbed)
    entry.pv = dataclasses.replace(
        entry.pv, position=Position(math.nan, 0.0)
    )
    with pytest.raises(InvariantViolation, match="non-finite position"):
        make_checker(testbed, [a]).run()


def test_detects_loct_position_outside_the_world(testbed):
    a, _b, entry = _neighbor_entry(testbed)
    entry.pv = dataclasses.replace(entry.pv, position=Position(1e9, 0.0))
    with pytest.raises(InvariantViolation, match="outside the plausible"):
        make_checker(testbed, [a]).run()


# ----------------------------------------------------------------------
# CBF buffers
# ----------------------------------------------------------------------
def _plant_buffer(testbed, node, *, forward_rhl=5, cancel=False):
    from repro.geonet.cbf import _BufferedPacket

    timer = testbed.sim.schedule(0.05, lambda: None)
    if cancel:
        timer.cancel()
    node.router.cbf._buffers[("fake", 1)] = _BufferedPacket(
        packet=None,
        first_rhl=5,
        forward_rhl=forward_rhl,
        timer=timer,
        buffered_at=testbed.sim.now,
    )


def test_detects_cbf_copy_with_exhausted_hop_budget(testbed):
    (node,) = testbed.chain(1, 100.0)
    testbed.warm_up(2.0)
    _plant_buffer(testbed, node, forward_rhl=0)
    with pytest.raises(InvariantViolation, match="exhausted hop budget"):
        make_checker(testbed, [node]).run()


def test_detects_cbf_cancelled_timer_left_buffered(testbed):
    (node,) = testbed.chain(1, 100.0)
    testbed.warm_up(2.0)
    _plant_buffer(testbed, node, cancel=True)
    with pytest.raises(InvariantViolation, match="cancelled contention timer"):
        make_checker(testbed, [node]).run()


# ----------------------------------------------------------------------
# ledger
# ----------------------------------------------------------------------
def test_detects_broken_ledger_conservation(testbed):
    testbed.warm_up(2.0)
    ledger = PacketLedger()
    record = ledger.originated("gbc", (1, 1), 0.0, 1)
    record.first_drop = (1.0, "bogus-reason")  # not in the outcome taxonomy
    with pytest.raises(InvariantViolation, match="conservation broken"):
        make_checker(testbed, ledger=ledger).run()


def test_detects_ledger_record_originated_in_the_future(testbed):
    testbed.warm_up(2.0)
    ledger = PacketLedger()
    ledger.originated("gbc", (9, 9), testbed.sim.now + 100.0, 1)
    with pytest.raises(InvariantViolation, match="originated in the future"):
        make_checker(testbed, ledger=ledger).run()


def test_detects_drop_preceding_origination(testbed):
    testbed.warm_up(2.0)
    ledger = PacketLedger()
    record = ledger.originated("gbc", (2, 2), 1.5, 1)
    record.first_drop = (0.5, reasons.LIFETIME_EXPIRED)
    with pytest.raises(InvariantViolation, match="drop precedes"):
        make_checker(testbed, ledger=ledger).run()


def test_detects_delivery_preceding_origination(testbed):
    testbed.warm_up(2.0)
    ledger = PacketLedger()
    record = ledger.originated("gbc", (3, 3), 1.5, 1)
    record.deliveries = 1
    record.first_delivery = 0.5
    with pytest.raises(InvariantViolation, match="delivery precedes"):
        make_checker(testbed, ledger=ledger).run()


# ----------------------------------------------------------------------
# spatial grid
# ----------------------------------------------------------------------
def _built_grid(testbed):
    testbed.chain(3, 200.0)
    testbed.warm_up(5.0)
    grid = testbed.channel._grid
    assert grid is not None, "warm-up traffic should have built the grid"
    return grid


def test_detects_stale_grid_bucket_position(testbed):
    grid = _built_grid(testbed)
    item, cell = next(iter(grid._cell_of.items()))
    x, y = grid._cells[cell][item]
    grid._cells[cell][item] = (x + 10000.0, y)  # bypasses move()
    with pytest.raises(InvariantViolation, match="spatial grid inconsistent"):
        make_checker(testbed).run()


def test_detects_interface_missing_from_grid(testbed):
    grid = _built_grid(testbed)
    item = next(iter(grid._cell_of))
    grid.remove(item)  # clean removal: grid stays self-consistent
    with pytest.raises(
        InvariantViolation, match="missing from the spatial grid"
    ):
        make_checker(testbed).run()


def test_violation_carries_a_diagnostic_dump(testbed):
    testbed.warm_up(2.0)
    ledger = PacketLedger()
    ledger.originated("gbc", (9, 9), testbed.sim.now + 100.0, 1)
    with pytest.raises(InvariantViolation) as excinfo:
        make_checker(testbed, ledger=ledger).run()
    assert "sim.now=" in excinfo.value.dump
    assert "sim.now=" in str(excinfo.value)
    # a failed sweep does not count as a completed check
    checker = make_checker(testbed, ledger=ledger)
    with pytest.raises(InvariantViolation):
        checker.run()
    assert checker.checks_run == 0
