"""Bounded-state guarantees of the misbehavior detector.

The original detector kept every first-heard beacon key, every first-seen
RHL, and every flagged replay key for the whole run, and only pruned the
beacon table on *insert* once it crossed 4096 entries — a detector whose
radio went quiet after a busy spell never released anything.  These tests
pin the fix: records expire on their semantic horizons (dedup window for
beacons, packet lifetime for RHL records), the periodic sweep shrinks a
quiet detector, and the cap applies to both tables.
"""

import pytest

from repro.core.detection import MisbehaviorDetector
from repro.geo.position import Position, PositionVector


def pv(x: float, timestamp: float) -> PositionVector:
    return PositionVector(
        position=Position(x, 0.0), speed=0.0, heading=0.0, timestamp=timestamp
    )


def make_detector(testbed, **kwargs):
    node = testbed.add_node(0.0, beaconing=False)
    kwargs.setdefault("prune_interval", None)
    return MisbehaviorDetector(node, **kwargs)


def feed_beacons(detector, n, *, start_addr=1000, t=0.0):
    """n distinct first hearings via the bulk path (signature-free)."""
    detector.observe_bulk(
        [(start_addr + i, pv(10.0 * i, t)) for i in range(n)], t
    )


class TestBeaconExpiry:
    def test_first_heard_records_expire_with_the_dedup_window(self, testbed):
        detector = make_detector(testbed, dedup_window=2.0)
        feed_beacons(detector, 50, t=0.0)
        assert len(detector._beacons_heard) == 50
        detector.sweep(5.0)
        assert len(detector._beacons_heard) == 0

    def test_replay_after_expiry_is_a_fresh_hearing_not_an_alert(self, testbed):
        detector = make_detector(testbed, dedup_window=2.0)
        detector.observe_bulk([(7, pv(0.0, 0.0))], 0.0)
        detector.sweep(10.0)
        # Outside the window a duplicate is un-witnessable anyway (the
        # router would have stale-rejected it); the detector records it
        # as a new first hearing instead of alerting.
        detector.observe_bulk([(7, pv(0.0, 0.0))], 10.0)
        assert detector.stats.replayed_beacons == 0
        assert len(detector._beacons_heard) == 1

    def test_flagged_replay_keys_are_pruned_with_their_beacons(self, testbed):
        detector = make_detector(testbed, dedup_window=2.0)
        detector.observe_bulk([(7, pv(0.0, 0.0))], 0.0)
        detector.observe_bulk([(7, pv(0.0, 0.0))], 0.5)
        assert detector.stats.replayed_beacons == 1
        assert len(detector._flagged_replays) == 1
        detector.sweep(5.0)
        assert len(detector._flagged_replays) == 0


class TestRhlExpiry:
    def test_rhl_records_expire_with_the_packet_lifetime(self, testbed):
        detector = make_detector(testbed, packet_lifetime=10.0)
        detector._first_rhl[(1, 1)] = (5, 0.0)
        detector._first_rhl[(1, 2)] = (5, 8.0)
        detector.sweep(12.0)
        assert (1, 1) not in detector._first_rhl
        assert (1, 2) in detector._first_rhl


class TestCap:
    def test_insert_time_cap_bounds_a_hot_beacon_table(self, testbed):
        detector = make_detector(testbed, max_tracked=64, dedup_window=2.0)
        # Everything lands in one dedup window, so the cap-triggered prune
        # cannot expire anything — the table still may not run away.
        for i in range(10):
            feed_beacons(detector, 64, start_addr=10_000 * i, t=0.1 * i)
        assert len(detector._beacons_heard) <= 64 + 1

    def test_cap_triggered_prune_expires_old_windows(self, testbed):
        detector = make_detector(testbed, max_tracked=64, dedup_window=2.0)
        feed_beacons(detector, 63, t=0.0)
        feed_beacons(detector, 4, start_addr=9000, t=10.0)
        # Crossing the cap at t=10 pruned the t=0 generation entirely.
        assert len(detector._beacons_heard) == 4


class TestPeriodicSweep:
    def test_quiet_detector_releases_state_without_new_traffic(self, testbed):
        node = testbed.add_node(0.0, beaconing=False)
        detector = MisbehaviorDetector(node, prune_interval=5.0)
        detector.observe_bulk(
            [(1000 + i, pv(10.0 * i, testbed.sim.now)) for i in range(40)],
            testbed.sim.now,
        )
        detector._first_rhl[(1, 1)] = (5, testbed.sim.now)
        assert detector.tracked_state_size() == 41
        # No further traffic: only the scheduled sweep can shrink it.
        testbed.sim.run_until(testbed.sim.now + 90.0)
        assert detector.tracked_state_size() == 0

    def test_prune_interval_none_schedules_no_sweep(self, testbed):
        detector = make_detector(testbed, prune_interval=None)
        assert detector._sweep_process is None

    def test_stop_cancels_sweep_and_releases_bulk_tap(self, testbed):
        node = testbed.add_node(0.0, beaconing=False)
        detector = MisbehaviorDetector(node, prune_interval=5.0)
        assert detector.observe_bulk in node.bulk_beacon_taps
        detector.stop()
        assert detector.observe_bulk not in node.bulk_beacon_taps
        assert detector._sweep_process is None
        detector.stop()  # idempotent


class TestValidation:
    def test_bad_knobs_rejected(self, testbed):
        node = testbed.add_node(0.0, beaconing=False)
        with pytest.raises(ValueError):
            MisbehaviorDetector(node, max_tracked=0)
        with pytest.raises(ValueError):
            MisbehaviorDetector(node, prune_interval=0.0)
        with pytest.raises(ValueError):
            MisbehaviorDetector(node, packet_lifetime=-1.0)
