"""Tests for the extended threat model: coordinated multi-mast replay,
the mobile attacker, and the adaptive (detector-aware) attacker."""

import pytest

from repro.core.attacks import (
    AdaptiveInterceptor,
    CoordinatedInterceptor,
    InterAreaInterceptor,
    ReplayCoordinator,
    deploy_coordinated_masts,
)
from repro.core.detection import deploy_fleet_detectors
from repro.core.vulnerability import (
    coverage_fraction,
    covered_length,
    greedy_mast_placement,
)
from repro.geo.position import Position


def attacker_kwargs(testbed, **overrides):
    kwargs = dict(
        sim=testbed.sim,
        channel=testbed.channel,
        streams=testbed.streams,
        attack_range=600.0,
    )
    kwargs.update(overrides)
    return kwargs


# ----------------------------------------------------------------------
# greedy placement geometry
# ----------------------------------------------------------------------
class TestPlacement:
    def test_covered_length_unions_overlaps(self):
        # Two masts 100 m apart with R=200: union [0, 500] clipped.
        assert covered_length(
            [200.0, 300.0], attack_range=200.0, road_length=1000.0
        ) == pytest.approx(500.0)

    def test_covered_length_clips_to_the_road(self):
        assert covered_length(
            [0.0], attack_range=300.0, road_length=1000.0
        ) == pytest.approx(300.0)

    def test_greedy_returns_sorted_in_road_positions(self):
        xs = greedy_mast_placement(
            n_masts=3, attack_range=400.0, road_length=4000.0
        )
        assert len(xs) == 3
        assert xs == sorted(xs)
        assert all(0.0 <= x <= 4000.0 for x in xs)

    def test_coverage_is_monotone_in_mast_count(self):
        fractions = [
            coverage_fraction(
                greedy_mast_placement(
                    n_masts=n, attack_range=400.0, road_length=4000.0
                ),
                attack_range=400.0,
                road_length=4000.0,
            )
            for n in (1, 2, 3, 4)
        ]
        assert fractions == sorted(fractions)
        # 4 masts x 800 m footprints nearly tile a 4 km road.
        assert fractions[-1] > 0.75

    def test_masts_spread_instead_of_stacking(self):
        xs = greedy_mast_placement(
            n_masts=2, attack_range=400.0, road_length=4000.0
        )
        assert abs(xs[1] - xs[0]) >= 400.0


# ----------------------------------------------------------------------
# coordinated masts
# ----------------------------------------------------------------------
class TestCoordinated:
    def test_each_beacon_claimed_once_across_masts(self, testbed):
        testbed.add_node(400.0)
        masts = deploy_coordinated_masts(
            positions=[Position(300.0, -10.0), Position(500.0, -10.0)],
            **attacker_kwargs(testbed),
        )
        testbed.warm_up(12.0)
        coordinator = masts[0].coordinator
        assert coordinator.claims_granted > 0
        # Both masts hear every beacon; the second asker is always denied.
        assert coordinator.claims_denied > 0

    def test_masts_never_replay_each_other(self, testbed):
        testbed.add_node(400.0)
        masts = deploy_coordinated_masts(
            positions=[Position(300.0, -10.0), Position(500.0, -10.0)],
            **attacker_kwargs(testbed),
        )
        testbed.warm_up(12.0)
        # One source beaconing at period 3 emits <= 6 distinct beacons in
        # 12 s; a mast-to-mast replay storm would send orders of magnitude
        # more (each replay re-heard and re-replayed by the other mast).
        replays = sum(m.beacons_replayed for m in masts)
        assert 0 < replays <= 6
        assert replays == masts[0].coordinator.claims_granted

    def test_registered_masts_share_the_roster(self, testbed):
        coordinator = ReplayCoordinator()
        mast = CoordinatedInterceptor(
            coordinator=coordinator,
            position=Position(0.0, -10.0),
            **attacker_kwargs(testbed),
        )
        assert coordinator.is_mast(mast.iface.address)

    def test_claim_expires_after_the_window(self):
        coordinator = ReplayCoordinator(claim_window=2.0)
        assert coordinator.claim((1, 0.0), 0.0)
        assert not coordinator.claim((1, 0.0), 1.0)
        assert coordinator.claim((1, 0.0), 5.0)


# ----------------------------------------------------------------------
# mobile attacker
# ----------------------------------------------------------------------
class TestMobile:
    def test_moves_along_the_path_and_wraps(self, testbed):
        from repro.core.attacks.mobile import MobileInterceptor

        attacker = MobileInterceptor(
            path=[Position(0.0, -10.0), Position(100.0, -10.0)],
            speed=20.0,
            update_interval=0.5,
            **attacker_kwargs(testbed),
        )
        testbed.sim.run_until(2.0)
        assert attacker.position.x == pytest.approx(40.0)
        testbed.sim.run_until(6.0)  # 120 m travelled: wrapped to 20 m
        assert attacker.position.x == pytest.approx(20.0)
        assert attacker.distance_travelled == pytest.approx(120.0)

    def test_replays_while_moving(self, testbed):
        from repro.core.attacks.mobile import MobileInterceptor

        testbed.add_node(200.0)
        attacker = MobileInterceptor(
            path=[Position(0.0, -10.0), Position(400.0, -10.0)],
            speed=30.0,
            **attacker_kwargs(testbed),
        )
        testbed.warm_up(10.0)
        assert attacker.stats.replays_sent > 0

    def test_path_validation(self, testbed):
        from repro.core.attacks.mobile import MobileInterceptor

        with pytest.raises(ValueError):
            MobileInterceptor(
                path=[Position(0.0, 0.0)],
                speed=10.0,
                **attacker_kwargs(testbed),
            )
        with pytest.raises(ValueError):
            MobileInterceptor(
                path=[Position(0.0, 0.0), Position(1.0, 0.0)],
                speed=0.0,
                **attacker_kwargs(testbed),
            )


# ----------------------------------------------------------------------
# adaptive attacker
# ----------------------------------------------------------------------
class TestAdaptive:
    def scene(self, testbed):
        """Three sources in attacker range, witnesses for replays."""
        return testbed.chain(3, 350.0)

    def test_replay_budget_is_respected(self, testbed):
        self.scene(testbed)
        attacker = AdaptiveInterceptor(
            position=Position(350.0, -10.0),
            max_replays_per_window=2.0,
            alert_window=5.0,
            per_source_cooldown=0.0,
            **attacker_kwargs(testbed),
        )
        duration = 30.0
        testbed.warm_up(duration)
        budget = 2.0 * (duration / 5.0) + 2.0  # refills + the initial bucket
        assert 0 < attacker.stats.replays_sent <= budget

    def test_withholds_when_captures_exceed_budget(self, testbed):
        self.scene(testbed)
        attacker = AdaptiveInterceptor(
            position=Position(350.0, -10.0),
            max_replays_per_window=1.0,
            alert_window=10.0,
            per_source_cooldown=0.0,
            **attacker_kwargs(testbed),
        )
        testbed.warm_up(30.0)
        assert attacker.replays_withheld > 0

    def test_quieter_than_the_static_interceptor(self, make_testbed):
        def alerts_with(attacker_cls, **attacker_overrides):
            bed = make_testbed(seed=7)
            nodes = bed.chain(3, 350.0)
            detectors = deploy_fleet_detectors(nodes)
            attacker_cls(
                position=Position(350.0, -10.0),
                **attacker_kwargs(bed, **attacker_overrides),
            )
            bed.warm_up(30.0)
            return sum(d.stats.total for d in detectors)

        static_alerts = alerts_with(InterAreaInterceptor)
        adaptive_alerts = alerts_with(
            AdaptiveInterceptor, max_replays_per_window=1.0, alert_window=10.0
        )
        assert 0 < adaptive_alerts < static_alerts / 3
