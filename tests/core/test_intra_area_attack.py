"""Tests for the intra-area blockage attack (paper §III-C / Figure 5)."""


from repro.core.attacks import IntraAreaBlocker
from repro.geo.areas import RectangularArea
from repro.geo.position import Position

FLOOD = RectangularArea(-100, 5000, -100, 100)


def deploy_blocker(testbed, x=800.0, attack_range=500.0, **kwargs):
    return IntraAreaBlocker(
        sim=testbed.sim,
        channel=testbed.channel,
        streams=testbed.streams,
        position=Position(x, -10.0),
        attack_range=attack_range,
        **kwargs,
    )


def build_chain(testbed, n=10, spacing=400.0):
    nodes = testbed.chain(n, spacing)
    received = [[] for _ in nodes]
    for node, bucket in zip(nodes, received):
        node.router.on_deliver.append(lambda _n, p, b=bucket: b.append(p))
    return nodes, received


def test_flood_blocked_past_the_attacker(testbed):
    nodes, received = build_chain(testbed)
    deploy_blocker(testbed)
    testbed.warm_up()
    nodes[0].originate(FLOOD, "flood")
    testbed.sim.run_until(testbed.sim.now + 3.0)
    got = [len(r) for r in received]
    # Nodes near the source still receive; the far end never does.
    assert got[0] == 1 and got[1] == 1
    assert got[-1] == 0 and got[-2] == 0


def test_attack_free_flood_reaches_everyone(testbed):
    nodes, received = build_chain(testbed)
    testbed.warm_up()
    nodes[0].originate(FLOOD, "flood")
    testbed.sim.run_until(testbed.sim.now + 3.0)
    assert all(len(r) == 1 for r in received)


def test_replay_carries_rhl_one(testbed):
    nodes, _ = build_chain(testbed, n=4)
    blocker = deploy_blocker(testbed)
    captured = []
    original_inject = blocker.inject

    def spy(kind, payload, **kwargs):
        captured.append(payload)
        original_inject(kind, payload, **kwargs)

    blocker.inject = spy
    testbed.warm_up()
    nodes[0].originate(FLOOD, "flood")
    testbed.sim.run_until(testbed.sim.now + 2.0)
    assert len(captured) == 1
    assert captured[0].rhl == 1


def test_replay_once_per_packet(testbed):
    nodes, _ = build_chain(testbed)
    blocker = deploy_blocker(testbed)
    testbed.warm_up()
    nodes[0].originate(FLOOD, "one")
    testbed.sim.run_until(testbed.sim.now + 2.0)
    assert blocker.packets_replayed == 1
    nodes[0].originate(FLOOD, "two")
    testbed.sim.run_until(testbed.sim.now + 2.0)
    assert blocker.packets_replayed == 2


def test_rhl_rewrite_keeps_source_signature_valid(testbed):
    """The modified replay still authenticates (unsigned RHL)."""
    nodes, _ = build_chain(testbed, n=4)
    deploy_blocker(testbed)
    testbed.warm_up()
    nodes[0].originate(FLOOD, "flood")
    testbed.sim.run_until(testbed.sim.now + 2.0)
    assert all(n.router.stats.gbc_rejected_auth == 0 for n in nodes)


def test_first_time_receivers_of_replay_deliver_but_do_not_forward(testbed):
    # Node at 1300 is beyond the source's 486 m range but inside the
    # attacker's 500 m replay: it receives RHL=1, delivers, never forwards.
    src = testbed.add_node(0.0)
    fresh = testbed.add_node(700.0)
    beyond = testbed.add_node(1400.0)
    got_fresh, got_beyond = [], []
    fresh.router.on_deliver.append(lambda n, p: got_fresh.append(p))
    beyond.router.on_deliver.append(lambda n, p: got_beyond.append(p))
    deploy_blocker(testbed, x=400.0, attack_range=500.0)
    testbed.warm_up()
    src.originate(FLOOD, "flood")
    testbed.sim.run_until(testbed.sim.now + 3.0)
    assert len(got_fresh) == 1  # first-time receiver of the replay
    assert got_beyond == []  # rhl exhausted, never re-flooded
    assert fresh.router.cbf.stats.rhl_exhausted == 1


def test_targeted_variant_replays_unmodified_at_low_power(testbed):
    nodes, _ = build_chain(testbed, n=4)
    blocker = deploy_blocker(testbed, rewrite_rhl=False, replay_range=50.0)
    captured = []
    original_inject = blocker.inject

    def spy(kind, payload, **kwargs):
        captured.append((payload, kwargs.get("tx_range")))
        original_inject(kind, payload, **kwargs)

    blocker.inject = spy
    testbed.warm_up()
    nodes[0].originate(FLOOD, "flood")
    testbed.sim.run_until(testbed.sim.now + 2.0)
    payload, tx_range = captured[0]
    assert payload.rhl > 1  # unmodified
    assert tx_range == 50.0


def test_blocker_ignores_beacons(testbed):
    build_chain(testbed, n=4)
    blocker = deploy_blocker(testbed)
    testbed.warm_up(12.0)
    assert blocker.stats.beacons_sniffed > 0
    assert blocker.packets_replayed == 0


def test_rhl_check_mitigation_defeats_blockage(make_testbed):
    from repro.geonet.config import GeoNetConfig
    from repro.radio.technology import DSRC

    config = GeoNetConfig(dist_max=DSRC.max_range_m, rhl_check=True)
    testbed = make_testbed(config=config)
    # Density matters: the check keeps in-zone contenders alive, and one of
    # them must out-reach the replay's first-time-receiver dead zone.
    nodes, received = build_chain(testbed, n=20, spacing=150.0)
    deploy_blocker(testbed)
    testbed.warm_up()
    nodes[0].originate(FLOOD, "protected")
    testbed.sim.run_until(testbed.sim.now + 3.0)
    # With the RHL-drop check, protected contenders ignore the attacker's
    # duplicate and the flood still reaches the far end.
    assert len(received[-1]) == 1
    assert sum(len(r) for r in received) >= len(nodes) - 3
