"""Tests for the online (streaming) detection layer: window scoring,
feature aggregation, and the pipeline's monitor lifecycle."""

import pytest

from repro.core.attacks import InterAreaInterceptor
from repro.core.online_detection import (
    ALERT_KINDS,
    DetectionPipeline,
    OnlineDetector,
)
from repro.geo.position import Position


# ----------------------------------------------------------------------
# OnlineDetector (pure scoring)
# ----------------------------------------------------------------------
class TestOnlineDetector:
    def close(self, detector, *, monitors=10, alerts=None, features=None,
              start=0.0, end=5.0):
        return detector.close_window(
            start=start, end=end, monitors=monitors,
            alerts=alerts or {}, features=features or {},
        )

    def test_alert_rate_is_per_monitor(self):
        detector = OnlineDetector(alert_rate_threshold=5.0)
        window = self.close(
            detector, monitors=10, alerts={"replayed-beacon": 20}
        )
        assert window.alert_rate == pytest.approx(2.0)
        assert window.score == pytest.approx(0.4)
        assert not window.flagged

    def test_window_flags_at_the_threshold(self):
        detector = OnlineDetector(alert_rate_threshold=5.0)
        window = self.close(
            detector, monitors=2, alerts={"implausible-position": 10}
        )
        assert window.score == pytest.approx(1.0)
        assert window.flagged

    def test_first_detection_is_the_first_flagged_windows_end(self):
        detector = OnlineDetector(alert_rate_threshold=1.0)
        self.close(detector, monitors=5, alerts={}, start=0.0, end=5.0)
        self.close(
            detector, monitors=5, alerts={"replayed-beacon": 10},
            start=5.0, end=10.0,
        )
        self.close(
            detector, monitors=5, alerts={"replayed-beacon": 50},
            start=10.0, end=15.0,
        )
        assert detector.first_detection == 10.0
        assert [w.flagged for w in detector.windows] == [False, True, True]

    def test_feature_threshold_can_flag_alone(self):
        detector = OnlineDetector(
            alert_rate_threshold=100.0,
            feature_thresholds={"loct_inserts": 4.0},
        )
        window = self.close(detector, features={"loct_inserts": 8.0})
        assert window.score == pytest.approx(2.0)
        assert window.flagged

    def test_zero_monitor_window_divides_safely(self):
        detector = OnlineDetector()
        window = self.close(detector, monitors=0, alerts={"rhl-anomaly": 3})
        assert window.alert_rate == pytest.approx(3.0)

    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            OnlineDetector(alert_rate_threshold=0.0)
        with pytest.raises(ValueError):
            OnlineDetector(feature_thresholds={"x": -1.0})


# ----------------------------------------------------------------------
# DetectionPipeline (wired into a testbed)
# ----------------------------------------------------------------------
class TestPipeline:
    def test_attach_is_idempotent_per_node(self, testbed):
        pipeline = DetectionPipeline(sim=testbed.sim)
        node = testbed.add_node(0.0)
        first = pipeline.attach(node)
        assert pipeline.attach(node) is first
        assert pipeline.monitors_attached == 1

    def test_clean_traffic_closes_unflagged_windows(self, testbed):
        pipeline = DetectionPipeline(sim=testbed.sim, window=5.0)
        for node in testbed.chain(4, 350.0):
            pipeline.attach(node)
        testbed.warm_up(20.0)
        summary = pipeline.summary()
        assert summary.windows_total == 4
        assert summary.windows_flagged == 0
        assert not summary.detected
        assert sum(summary.alert_totals.values()) == 0

    def test_replay_attack_is_detected_within_a_window(self, testbed):
        # Four monitors cap the per-monitor rate well below a highway's
        # (~once per beacon per witness); scale the threshold to the scene.
        pipeline = DetectionPipeline(
            sim=testbed.sim, window=5.0, alert_rate_threshold=3.0
        )
        for node in testbed.chain(4, 350.0):
            pipeline.attach(node)
        InterAreaInterceptor(
            sim=testbed.sim,
            channel=testbed.channel,
            streams=testbed.streams,
            position=Position(500.0, -10.0),
            attack_range=600.0,
        )
        testbed.warm_up(30.0)
        summary = pipeline.summary()
        assert summary.detected
        assert summary.first_detection <= 10.0
        assert summary.windows_flagged > 0

    def test_detach_retires_features_without_breaking_deltas(self, testbed):
        pipeline = DetectionPipeline(sim=testbed.sim, window=5.0)
        nodes = testbed.chain(3, 350.0)
        for node in nodes:
            pipeline.attach(node)
        testbed.warm_up(10.0)
        pipeline.detach(nodes[0])
        pipeline.detach(nodes[0])  # idempotent
        testbed.warm_up(10.0)
        summary = pipeline.summary()
        assert summary.monitors == 2
        assert summary.monitors_attached == 3
        # Retiring a monitor must not make any feature delta negative
        # (negative Counter entries silently vanish, which would hide
        # churn from the scorer).
        for window in pipeline.online.windows:
            assert all(v >= 0 for v in window.features.values())

    def test_feature_stream_sees_loct_churn(self, testbed):
        pipeline = DetectionPipeline(sim=testbed.sim, window=5.0)
        for node in testbed.chain(3, 350.0):
            pipeline.attach(node)
        testbed.warm_up(20.0)
        inserts = sum(
            w.features.get("loct_inserts", 0.0)
            for w in pipeline.online.windows
        )
        assert inserts > 0

    def test_extras_are_flat_floats_with_sentinel(self, testbed):
        pipeline = DetectionPipeline(sim=testbed.sim, window=5.0)
        pipeline.attach(testbed.add_node(0.0))
        testbed.warm_up(11.0)
        extras = pipeline.summary().extras()
        assert extras["detect_first_detection_s"] == -1.0
        assert extras["detect_windows_total"] == 2.0
        assert all(isinstance(v, float) for v in extras.values())
        for kind in ALERT_KINDS:
            assert f"detect_alerts_{kind.replace('-', '_')}" in extras
