"""Threat-model enforcement tests (paper §III-A).

The attacker is an *outsider*: no certificate, no forging, no breaking of
signatures.  These tests pin down that the attack implementations stay
within those capabilities and that the security layer would catch anything
stronger.
"""

import pytest

from repro.core.attacks import InterAreaInterceptor, IntraAreaBlocker
from repro.geo.position import Position
from repro.security.pseudonym import PseudonymPool


def deploy(testbed, cls, **kwargs):
    kwargs.setdefault("position", Position(100.0, -10.0))
    kwargs.setdefault("attack_range", 500.0)
    return cls(
        sim=testbed.sim,
        channel=testbed.channel,
        streams=testbed.streams,
        **kwargs,
    )


def test_attackers_hold_no_credentials(testbed):
    for cls in (InterAreaInterceptor, IntraAreaBlocker):
        attacker = deploy(testbed, cls, name=cls.__name__)
        assert not hasattr(attacker, "credentials")


def test_attacker_uses_pseudonymous_address(testbed):
    attacker = deploy(testbed, InterAreaInterceptor)
    assert PseudonymPool.is_pseudonym(attacker.iface.address)


def test_attacker_cannot_forge_a_beacon_that_verifies(testbed):
    """Even if attack code *tried* to craft a beacon, it has no enrolled
    keypair, so receivers reject it."""
    from repro.geo.position import PositionVector
    from repro.geonet.packets import BeaconBody
    from repro.security.certificates import Certificate, Credentials
    from repro.security.signing import sign, verify

    self_made = Credentials(
        certificate=Certificate("mallory", "self-pub", "USDOT-CA", "self-sig"),
        private_token="self-priv",
    )
    forged = sign(
        BeaconBody(
            source_addr=1,
            pv=PositionVector(Position(0, 0), 0.0, 0.0, 0.0),
        ),
        self_made,
    )
    assert not verify(forged)


def test_attacker_cannot_alter_signed_fields_undetected(testbed):
    """Altering the signed body of a captured packet breaks verification;
    only the unsigned per-hop fields (RHL, sender position) are malleable."""
    from repro.geo.areas import RectangularArea
    from repro.geo.position import PositionVector
    from repro.geonet.packets import GbcBody, GeoBroadcastPacket
    from repro.security.signing import SignedMessage, sign, verify

    creds = testbed.ca.enroll("legit")
    body = GbcBody(
        source_addr=1,
        sequence_number=1,
        source_pv=PositionVector(Position(0, 0), 0.0, 0.0, 0.0),
        area=RectangularArea(0, 100, 0, 10),
        payload="brake warning",
        lifetime=60.0,
        created_at=0.0,
    )
    captured = GeoBroadcastPacket(
        signed=sign(body, creds),
        rhl=10,
        sender_addr=1,
        sender_position=Position(0, 0),
    )
    # Malleable: RHL rewrite verifies.
    rewritten = captured.next_hop_copy(
        rhl=1, sender_addr=captured.sender_addr, sender_position=Position(5, 0)
    )
    assert verify(rewritten.signed)
    # Not malleable: payload tampering fails verification.
    from dataclasses import replace

    tampered_body = replace(body, payload="all clear")
    tampered = SignedMessage(
        body=tampered_body,
        certificate=captured.signed.certificate,
        signature=captured.signed.signature,
    )
    assert not verify(tampered)


def test_attacker_does_not_influence_vehicle_motion(testbed):
    """The attacker is a radio entity only: traffic evolves identically with
    and without it (the property that makes A/B runs paired)."""
    from repro.experiments import ExperimentConfig
    from repro.experiments.world import World

    config = ExperimentConfig.intra_area_default(duration=5.0)
    worlds = [World(config, attacked=flag, seed=9) for flag in (False, True)]
    for world in worlds:
        world.run()
    positions = []
    for world in worlds:
        positions.append(
            sorted(round(v.x, 6) for v in world.traffic.vehicles())
        )
    assert positions[0] == positions[1]


def test_attack_reaction_delay_is_respected(testbed):
    testbed.add_node(0.0)
    testbed.add_node(50.0)
    attacker = deploy(testbed, InterAreaInterceptor, reaction_delay=0.01)
    replay_times = []
    original = attacker.replay_frame

    def spy(frame, **kwargs):
        replay_times.append((testbed.sim.now, frame.tx_time))
        original(frame, **kwargs)

    attacker.replay_frame = spy
    testbed.warm_up(5.0)
    assert replay_times
    for now, tx_time in replay_times:
        assert now - tx_time >= 0.01


def test_invalid_attacker_parameters_rejected(testbed):
    with pytest.raises(ValueError):
        deploy(testbed, InterAreaInterceptor, attack_range=0.0)
    kwargs = dict(
        sim=testbed.sim,
        channel=testbed.channel,
        streams=testbed.streams,
        position=Position(0, 0),
        attack_range=100.0,
        reaction_delay=-1.0,
    )
    with pytest.raises(ValueError):
        InterAreaInterceptor(**kwargs)
