"""Tests for the mitigation enablers and their end-to-end effect (§V)."""


from repro.core.mitigations import (
    duplicate_rhl_plausible,
    enable_plausibility_check,
    enable_rhl_check,
    position_plausible,
)
from repro.geonet.config import GeoNetConfig


def test_enable_plausibility_check_defaults():
    config = enable_plausibility_check(GeoNetConfig())
    assert config.plausibility_check
    assert config.plausibility_threshold == 486.0


def test_enable_plausibility_check_custom_threshold():
    config = enable_plausibility_check(GeoNetConfig(), threshold=593.0)
    assert config.plausibility_threshold == 593.0


def test_enable_rhl_check_defaults():
    config = enable_rhl_check(GeoNetConfig())
    assert config.rhl_check
    assert config.rhl_drop_threshold == 3


def test_enable_rhl_check_custom_threshold():
    config = enable_rhl_check(GeoNetConfig(), threshold=5)
    assert config.rhl_drop_threshold == 5


def test_enablers_do_not_mutate_input():
    base = GeoNetConfig()
    enable_plausibility_check(base)
    enable_rhl_check(base)
    assert not base.plausibility_check
    assert not base.rhl_check


def test_reexported_predicates_are_the_stack_predicates():
    from repro.geonet import checks

    assert position_plausible is checks.position_plausible
    assert duplicate_rhl_plausible is checks.duplicate_rhl_plausible


def test_plausibility_check_blocks_inter_area_attack_end_to_end(make_testbed):
    """Figure 4 scenario, with the §V-A check switched on: V1 skips the
    poisoned V3 entry and the packet flows through V2."""
    from repro.core.attacks import InterAreaInterceptor
    from repro.geo.areas import CircularArea
    from repro.geo.position import Position
    from repro.radio.technology import DSRC

    config = enable_plausibility_check(
        GeoNetConfig(dist_max=DSRC.max_range_m), threshold=DSRC.nlos_median_m
    )
    testbed = make_testbed(config=config)
    v1 = testbed.add_node(0.0)
    testbed.add_node(400.0)
    v3 = testbed.add_node(880.0)
    dest = testbed.add_node(1300.0)
    got = []
    dest.router.on_deliver.append(lambda n, p: got.append(p))
    InterAreaInterceptor(
        sim=testbed.sim,
        channel=testbed.channel,
        streams=testbed.streams,
        position=Position(450.0, -10.0),
        attack_range=600.0,
    )
    testbed.warm_up()
    # The poison is present (reception-side acceptance is unchanged)...
    assert v1.router.loct.get(v3.address, testbed.sim.now) is not None
    v1.originate(CircularArea(Position(1300.0, 0.0), 30.0), "protected")
    testbed.sim.run_until(testbed.sim.now + 2.0)
    # ...but the forwarding-time check routes around it.
    assert len(got) == 1
    assert v1.router.gf.stats.plausibility_rejections >= 1
