"""Tests for the misbehavior detection layer."""

import pytest

from repro.core.attacks import InterAreaInterceptor, IntraAreaBlocker
from repro.core.detection import MisbehaviorDetector, deploy_fleet_detectors
from repro.geo.areas import RectangularArea
from repro.geo.position import Position

FLOOD = RectangularArea(-100, 5000, -100, 100)


def test_attack_free_traffic_raises_no_alerts(testbed):
    nodes = testbed.chain(6, 350.0)
    detectors = deploy_fleet_detectors(nodes)
    testbed.warm_up(15.0)
    nodes[0].originate(FLOOD, "clean flood")
    testbed.sim.run_until(testbed.sim.now + 2.0)
    assert all(d.stats.total == 0 for d in detectors)


def test_beacon_replay_witnessed_by_doubly_covered_node(testbed):
    # v2 hears v3 directly AND via the attacker: it witnesses the replay.
    testbed.add_node(0.0)
    v2 = testbed.add_node(400.0)
    testbed.add_node(880.0)
    detector = MisbehaviorDetector(v2)
    InterAreaInterceptor(
        sim=testbed.sim,
        channel=testbed.channel,
        streams=testbed.streams,
        position=Position(450.0, -10.0),
        attack_range=600.0,
    )
    testbed.warm_up(12.0)
    assert detector.stats.replayed_beacons > 0


def test_poisoned_victim_sees_implausible_positions(testbed):
    v1 = testbed.add_node(0.0)
    testbed.add_node(880.0)
    detector = MisbehaviorDetector(v1, plausible_range=486.0)
    InterAreaInterceptor(
        sim=testbed.sim,
        channel=testbed.channel,
        streams=testbed.streams,
        position=Position(450.0, -10.0),
        attack_range=600.0,
    )
    testbed.warm_up(12.0)
    assert detector.stats.implausible_positions > 0
    kinds = {alert.kind for alert in detector.alerts}
    assert "implausible-position" in kinds


def test_rhl_rewrite_detected_by_contenders(testbed):
    nodes = testbed.chain(6, 350.0)
    detectors = deploy_fleet_detectors(nodes)
    IntraAreaBlocker(
        sim=testbed.sim,
        channel=testbed.channel,
        streams=testbed.streams,
        position=Position(900.0, -10.0),
        attack_range=500.0,
    )
    testbed.warm_up()
    nodes[0].originate(FLOOD, "blocked flood")
    testbed.sim.run_until(testbed.sim.now + 2.0)
    assert sum(d.stats.rhl_anomalies for d in detectors) > 0


def test_detector_does_not_break_protocol_processing(testbed):
    a = testbed.add_node(0.0)
    b = testbed.add_node(300.0)
    MisbehaviorDetector(b)
    testbed.warm_up()
    # Beacons still reach the router through the interposed handler.
    assert a.address in b.router.loct


def test_alert_callbacks_fire(testbed):
    v1 = testbed.add_node(0.0)
    testbed.add_node(880.0)
    detector = MisbehaviorDetector(v1)
    fired = []
    detector.on_alert.append(fired.append)
    InterAreaInterceptor(
        sim=testbed.sim,
        channel=testbed.channel,
        streams=testbed.streams,
        position=Position(450.0, -10.0),
        attack_range=600.0,
    )
    testbed.warm_up(12.0)
    assert fired
    assert fired[0].observer_addr == v1.address


def test_each_replay_flagged_once(testbed):
    testbed.add_node(0.0)
    v2 = testbed.add_node(400.0)
    testbed.add_node(880.0)
    detector = MisbehaviorDetector(v2)
    InterAreaInterceptor(
        sim=testbed.sim,
        channel=testbed.channel,
        streams=testbed.streams,
        position=Position(450.0, -10.0),
        attack_range=600.0,
    )
    testbed.sim.run_until(4.0)  # about one beacon per node
    # At most one replay alert per (source, timestamp) beacon.
    keys = [(a.subject_addr, a.detail) for a in detector.alerts
            if a.kind == "replayed-beacon"]
    assert len(keys) == len(set(keys))


def test_invalid_plausible_range_rejected(testbed):
    node = testbed.add_node(0.0)
    with pytest.raises(ValueError):
        MisbehaviorDetector(node, plausible_range=0.0)
