"""Tests for the insider blackhole baseline vs the outsider variant."""

import pytest

from repro.core.attacks.blackhole import InsiderBlackhole, OutsiderBlackhole
from repro.geo.areas import CircularArea
from repro.geo.position import Position

DEST_CENTER = Position(2000.0, 0.0)
DEST = CircularArea(DEST_CENTER, 30.0)


def deploy_insider(testbed, **kwargs):
    kwargs.setdefault("advertised_position", Position(800.0, 0.0))
    return InsiderBlackhole(
        sim=testbed.sim,
        channel=testbed.channel,
        streams=testbed.streams,
        position=Position(200.0, -10.0),
        credentials=testbed.ca.enroll("compromised-vehicle"),
        **kwargs,
    )


def deploy_outsider(testbed, **kwargs):
    kwargs.setdefault("advertised_position", Position(800.0, 0.0))
    return OutsiderBlackhole(
        sim=testbed.sim,
        channel=testbed.channel,
        streams=testbed.streams,
        position=Position(200.0, -10.0),
        **kwargs,
    )


def test_insider_forged_beacon_enters_victim_loct(testbed):
    victim = testbed.add_node(0.0)
    attacker = deploy_insider(testbed)
    testbed.warm_up()
    entry = victim.router.loct.get(attacker.iface.address, testbed.sim.now)
    assert entry is not None
    assert entry.position == Position(800.0, 0.0)  # the lie, not the truth


def test_outsider_forged_beacon_rejected(testbed):
    victim = testbed.add_node(0.0)
    attacker = deploy_outsider(testbed)
    testbed.warm_up()
    assert victim.router.loct.get(attacker.iface.address, testbed.sim.now) is None
    assert victim.router.stats.beacons_rejected_auth > 0
    assert attacker.beacons_forged > 0


def test_insider_attracts_and_drops_packets(testbed):
    victim = testbed.add_node(0.0)
    honest_relay = testbed.add_node(400.0)
    attacker = deploy_insider(testbed)
    got = []
    honest_relay.router.on_deliver.append(lambda n, p: got.append(p))
    testbed.warm_up()
    victim.originate(DEST, "valuables")
    testbed.sim.run_until(testbed.sim.now + 1.0)
    # The fake 800 m position beats the honest relay at 400 m.
    assert attacker.packets_attracted == 1
    assert attacker.packets_dropped == 1
    assert got == []


def test_outsider_blackhole_attracts_nothing(testbed):
    victim = testbed.add_node(0.0)
    testbed.add_node(400.0)
    attacker = deploy_outsider(testbed)
    testbed.warm_up()
    victim.originate(DEST, "valuables")
    testbed.sim.run_until(testbed.sim.now + 1.0)
    assert attacker.packets_attracted == 0
    assert victim.router.stats.gf_forwards == 1  # went to the honest relay


def test_grayhole_sometimes_forwards(testbed):
    victim = testbed.add_node(0.0)
    attacker = deploy_insider(testbed, grayhole_forward_probability=1.0)
    testbed.warm_up()
    victim.originate(DEST, "sampled")
    testbed.sim.run_until(testbed.sim.now + 1.0)
    assert attacker.packets_forwarded == 1
    assert attacker.packets_dropped == 0


def test_plausibility_check_also_blocks_the_insider(make_testbed):
    """The paper's §V-A defence helps against this baseline too when the
    forged position is out of plausible range."""
    from repro.geonet.config import GeoNetConfig
    from repro.radio.technology import DSRC

    config = GeoNetConfig(
        dist_max=DSRC.max_range_m,
        plausibility_check=True,
        plausibility_threshold=DSRC.nlos_median_m,
    )
    testbed = make_testbed(config=config)
    victim = testbed.add_node(0.0)
    honest_relay = testbed.add_node(400.0)
    attacker = deploy_insider(
        testbed, advertised_position=Position(900.0, 0.0)
    )
    testbed.warm_up()
    victim.originate(DEST, "protected")
    testbed.sim.run_until(testbed.sim.now + 1.0)
    assert attacker.packets_attracted == 0
    assert victim.router.gf.stats.plausibility_rejections >= 1
    # The packet went to the honest relay instead (which, having no further
    # in-range candidate toward the far-away area, holds and re-checks).
    assert victim.router.stats.gf_forwards == 1
    assert (
        honest_relay.router.stats.gf_forwards
        + honest_relay.router.stats.gf_rechecks
        >= 1
    )


def test_invalid_grayhole_probability_rejected(testbed):
    with pytest.raises(ValueError):
        deploy_insider(testbed, grayhole_forward_probability=1.5)


def test_insider_requires_credentials(testbed):
    with pytest.raises(ValueError):
        InsiderBlackhole(
            sim=testbed.sim,
            channel=testbed.channel,
            streams=testbed.streams,
            position=Position(0, 0),
            advertised_position=Position(10, 0),
            credentials=None,
        )


def test_stop_takes_blackhole_off_air(testbed):
    attacker = deploy_insider(testbed)
    testbed.warm_up()
    forged = attacker.beacons_forged
    attacker.stop()
    testbed.sim.run_until(testbed.sim.now + 10.0)
    assert attacker.beacons_forged == forged
