"""Tests for the inter-area interception attack (paper §III-B).

The scenarios mirror Figure 4: V1 (victim) cannot reach V3, the attacker can
reach both, and V2 is the correct next hop.
"""


from repro.core.attacks import InterAreaInterceptor
from repro.geo.areas import CircularArea
from repro.geo.position import Position


DEST = CircularArea(Position(3000.0, 0.0), 30.0)


def deploy_attacker(testbed, x=450.0, attack_range=600.0, **kwargs):
    return InterAreaInterceptor(
        sim=testbed.sim,
        channel=testbed.channel,
        streams=testbed.streams,
        position=Position(x, -10.0),
        attack_range=attack_range,
        **kwargs,
    )


def figure4_setup(testbed):
    """V1 at 0, V2 at 400 (real neighbor), V3 at 880 (out of V1's range)."""
    v1 = testbed.add_node(0.0)
    v2 = testbed.add_node(400.0)
    v3 = testbed.add_node(880.0)
    return v1, v2, v3


def test_replayed_beacon_poisons_victim_loct(testbed):
    v1, _v2, v3 = figure4_setup(testbed)
    deploy_attacker(testbed)
    testbed.warm_up()
    # V3 is far outside V1's 486 m range, yet V1 now lists it as a neighbor.
    entry = v1.router.loct.get(v3.address, testbed.sim.now)
    assert entry is not None
    assert entry.position == Position(880.0, 0.0)


def test_without_attacker_no_poisoning(testbed):
    v1, _v2, v3 = figure4_setup(testbed)
    testbed.warm_up()
    assert v1.router.loct.get(v3.address, testbed.sim.now) is None


def test_victim_forwards_to_unreachable_node_and_loses_packet(testbed):
    v1, v2, v3 = figure4_setup(testbed)
    deploy_attacker(testbed)
    got_v2, got_v3 = [], []
    v2.router.on_deliver.append(lambda n, p: got_v2.append(p))
    v3.router.on_deliver.append(lambda n, p: got_v3.append(p))
    testbed.warm_up()
    v1.originate(DEST, "intercept-me")
    testbed.sim.run_until(testbed.sim.now + 2.0)
    # V3 was chosen (closer to the destination) but is unreachable: the
    # packet died silently; V2 never saw it either.
    assert got_v2 == [] and got_v3 == []
    assert testbed.channel.stats.unicast_lost >= 1


def test_attack_free_run_delivers_via_v2(testbed):
    v1, v2, v3 = figure4_setup(testbed)
    got_v2 = []
    v2.router.on_deliver.append(lambda n, p: got_v2.append(p))
    testbed.warm_up()
    dest = testbed.add_node(1300.0)  # reachable from v3... and v3 from v2
    got = []
    dest.router.on_deliver.append(lambda n, p: got.append(p))
    testbed.warm_up(8.0)
    v1.originate(CircularArea(Position(1300.0, 0.0), 30.0), "via-v2")
    testbed.sim.run_until(testbed.sim.now + 2.0)
    assert len(got) == 1


def test_attacker_replays_all_overheard_beacons(testbed):
    figure4_setup(testbed)
    attacker = deploy_attacker(testbed)
    testbed.warm_up(12.0)
    assert attacker.beacons_replayed >= 6  # 3 nodes, ~4 beacons each
    assert attacker.stats.replays_sent == attacker.beacons_replayed


def test_attacker_ignores_data_packets(testbed):
    v1, _v2, _v3 = figure4_setup(testbed)
    attacker = deploy_attacker(testbed)
    testbed.warm_up()
    v1.originate(DEST, "data")
    testbed.sim.run_until(testbed.sim.now + 1.0)
    # The promiscuous sniffer heard the GF unicast but never replayed it —
    # the interceptor only replays beacons.
    assert attacker.stats.packets_sniffed >= 1
    assert attacker.stats.replays_sent == attacker.beacons_replayed


def test_replayed_beacon_passes_authentication(testbed):
    v1, _v2, _v3 = figure4_setup(testbed)
    deploy_attacker(testbed)
    testbed.warm_up()
    assert v1.router.stats.beacons_rejected_auth == 0


def test_short_range_attacker_cannot_poison_far_victims(testbed):
    v1 = testbed.add_node(0.0)
    v3 = testbed.add_node(880.0)
    # Attacker's range only covers v3, not v1.
    deploy_attacker(testbed, x=800.0, attack_range=200.0)
    testbed.warm_up()
    assert v1.router.loct.get(v3.address, testbed.sim.now) is None


def test_stopped_attacker_goes_silent(testbed):
    figure4_setup(testbed)
    attacker = deploy_attacker(testbed)
    testbed.warm_up()
    replays_before = attacker.stats.replays_sent
    attacker.stop()
    testbed.sim.run_until(testbed.sim.now + 10.0)
    assert attacker.stats.replays_sent == replays_before


def test_poison_expires_with_ttl_after_attacker_stops(testbed):
    v1, _v2, v3 = figure4_setup(testbed)
    attacker = deploy_attacker(testbed)
    testbed.warm_up()
    assert v1.router.loct.get(v3.address, testbed.sim.now) is not None
    attacker.stop()
    testbed.sim.run_until(testbed.sim.now + 21.0)  # past the 20 s TTL
    assert v1.router.loct.get(v3.address, testbed.sim.now) is None
