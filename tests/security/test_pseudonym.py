"""Tests for pseudonymous addresses."""

import random

from repro.security.pseudonym import PSEUDONYM_FLOOR, PseudonymPool


def test_draws_are_unique():
    pool = PseudonymPool(random.Random(1))
    drawn = {pool.draw() for _ in range(200)}
    assert len(drawn) == 200
    assert pool.issued == 200


def test_draws_in_pseudonym_range():
    pool = PseudonymPool(random.Random(2))
    for _ in range(20):
        assert PseudonymPool.is_pseudonym(pool.draw())


def test_static_addresses_not_pseudonyms():
    assert not PseudonymPool.is_pseudonym(1)
    assert not PseudonymPool.is_pseudonym(PSEUDONYM_FLOOR - 1)
    assert PseudonymPool.is_pseudonym(PSEUDONYM_FLOOR)


def test_deterministic_for_same_seed():
    a = PseudonymPool(random.Random(7)).draw()
    b = PseudonymPool(random.Random(7)).draw()
    assert a == b
