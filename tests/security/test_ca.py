"""Tests for the certificate authority."""

from repro.security.ca import CertificateAuthority


def test_enroll_returns_usable_credentials():
    ca = CertificateAuthority()
    creds = ca.enroll("v1")
    assert creds.certificate.subject_id == "v1"
    assert creds.private_token
    assert creds.certificate.public_token != creds.private_token


def test_certificate_verifies_against_issuer():
    ca = CertificateAuthority()
    creds = ca.enroll("v1")
    assert ca.verify_certificate(creds.certificate)


def test_certificate_rejected_by_other_ca():
    ca1 = CertificateAuthority(name="CA-1", secret="s1")
    ca2 = CertificateAuthority(name="CA-2", secret="s2")
    creds = ca1.enroll("v1")
    assert not ca2.verify_certificate(creds.certificate)


def test_tampered_certificate_rejected():
    from dataclasses import replace

    ca = CertificateAuthority()
    cert = ca.enroll("v1").certificate
    tampered = replace(cert, subject_id="someone-else")
    assert not ca.verify_certificate(tampered)


def test_same_ca_name_different_secret_rejected():
    real = CertificateAuthority(name="USDOT-CA", secret="real")
    fake = CertificateAuthority(name="USDOT-CA", secret="guessed")
    cert = fake.enroll("mallory").certificate
    assert not real.verify_certificate(cert)


def test_reenrollment_issues_fresh_keypair():
    ca = CertificateAuthority()
    first = ca.enroll("v1")
    second = ca.enroll("v1")
    assert first.certificate.public_token != second.certificate.public_token


def test_issued_count_tracks_subjects():
    ca = CertificateAuthority()
    ca.enroll("a")
    ca.enroll("b")
    ca.enroll("a")  # renewal, same subject
    assert ca.issued_count == 2


def test_distinct_subjects_get_distinct_tokens():
    ca = CertificateAuthority()
    tokens = {ca.enroll(f"v{i}").certificate.public_token for i in range(20)}
    assert len(tokens) == 20
