"""Tests for message signing — the properties the threat model rests on."""

from dataclasses import dataclass

import pytest

from repro.security.ca import CertificateAuthority
from repro.security.certificates import Certificate, Credentials
from repro.security.signing import (
    SignedMessage,
    SigningError,
    canonical_bytes,
    sign,
    verify,
)


@dataclass(frozen=True)
class Body:
    value: int
    text: str = "x"


@pytest.fixture
def creds():
    return CertificateAuthority().enroll("vehicle-1")


def test_signed_message_verifies(creds):
    assert verify(sign(Body(1), creds))


def test_replayed_message_still_verifies(creds):
    """Re-transmission by anyone keeps the signature valid — the inter-area
    attack's enabling property."""
    message = sign(Body(1), creds)
    # simulate capture + replay: the very same object is re-delivered
    for _ in range(3):
        assert verify(message)


def test_forged_body_fails(creds):
    message = sign(Body(1), creds)
    forged = SignedMessage(
        body=Body(2), certificate=message.certificate, signature=message.signature
    )
    assert not verify(forged)


def test_forged_signature_fails(creds):
    message = sign(Body(1), creds)
    forged = SignedMessage(
        body=message.body, certificate=message.certificate, signature="0" * 64
    )
    assert not verify(forged)


def test_unenrolled_certificate_fails():
    bogus_cert = Certificate(
        subject_id="attacker",
        public_token="deadbeef",
        ca_name="USDOT-CA",
        ca_signature="feedface",
    )
    bogus_creds = Credentials(certificate=bogus_cert, private_token="secret")
    message = sign(Body(1), bogus_creds)
    assert not verify(message)


def test_signature_bound_to_signer(creds):
    """A message signed by A does not verify under B's certificate."""
    other = CertificateAuthority().enroll("vehicle-2")
    message = sign(Body(1), creds)
    swapped = SignedMessage(
        body=message.body,
        certificate=other.certificate,
        signature=message.signature,
    )
    assert not verify(swapped)


def test_sign_without_credentials_raises():
    with pytest.raises(SigningError):
        sign(Body(1), None)


def test_verification_is_memoized(creds):
    message = sign(Body(1), creds)
    assert message.cached_verdict() is None
    verify(message)
    assert message.cached_verdict() is True


def test_negative_verdict_also_memoized(creds):
    message = sign(Body(1), creds)
    forged = SignedMessage(
        body=Body(2), certificate=message.certificate, signature=message.signature
    )
    verify(forged)
    assert forged.cached_verdict() is False


def test_canonical_bytes_deterministic():
    assert canonical_bytes(Body(1, "a")) == canonical_bytes(Body(1, "a"))


def test_canonical_bytes_field_sensitive():
    assert canonical_bytes(Body(1, "a")) != canonical_bytes(Body(2, "a"))
    assert canonical_bytes(Body(1, "a")) != canonical_bytes(Body(1, "b"))


def test_canonical_bytes_handles_nested_structures():
    @dataclass(frozen=True)
    class Nested:
        inner: Body
        values: tuple

    a = canonical_bytes(Nested(Body(1), (1, 2.5, "x")))
    b = canonical_bytes(Nested(Body(1), (1, 2.5, "x")))
    c = canonical_bytes(Nested(Body(1), (1, 2.5, "y")))
    assert a == b != c


def test_canonical_bytes_distinguishes_float_precision():
    assert canonical_bytes(Body(1, "0.1")) != canonical_bytes(Body(1, "0.10"))
