"""Tests for the wire format (byte encodings and size accounting)."""

import math

import pytest

from repro.geo.areas import CircularArea, RectangularArea
from repro.geo.position import Position, PositionVector
from repro.geonet import wire


def pv(x=123.45, y=2.5, speed=29.87, heading=0.0, t=17.125):
    return PositionVector(Position(x, y), speed=speed, heading=heading, timestamp=t)


class TestPositionVectorCodec:
    def test_round_trip(self):
        addr, original = 42, pv()
        decoded_addr, decoded = wire.decode_pv(wire.encode_pv(addr, original))
        assert decoded_addr == addr
        assert decoded.position.x == pytest.approx(original.position.x, abs=0.01)
        assert decoded.position.y == pytest.approx(original.position.y, abs=0.01)
        assert decoded.speed == pytest.approx(original.speed, abs=0.01)
        assert decoded.timestamp == pytest.approx(original.timestamp, abs=0.001)

    def test_heading_round_trip(self):
        original = pv(heading=math.pi)
        _addr, decoded = wire.decode_pv(wire.encode_pv(1, original))
        assert decoded.heading == pytest.approx(math.pi, abs=0.001)

    def test_truncated_rejected(self):
        with pytest.raises(wire.WireError):
            wire.decode_pv(b"\x00" * 4)


class TestAreaCodec:
    def test_circle_round_trip(self):
        area = CircularArea(Position(4020.0, 5.0), 15.0)
        decoded = wire.decode_area(wire.encode_area(area))
        assert isinstance(decoded, CircularArea)
        assert decoded.center_point.x == pytest.approx(4020.0)
        assert decoded.radius == pytest.approx(15.0)

    def test_rectangle_round_trip(self):
        area = RectangularArea(0.0, 4000.0, 0.0, 10.0)
        decoded = wire.decode_area(wire.encode_area(area))
        assert isinstance(decoded, RectangularArea)
        assert decoded.x_max == pytest.approx(4000.0)

    def test_unknown_kind_rejected(self):
        data = bytearray(wire.encode_area(CircularArea(Position(0, 0), 1.0)))
        data[0] = 99
        with pytest.raises(wire.WireError):
            wire.decode_area(bytes(data))


class TestBeaconCodec:
    def test_round_trip(self):
        data = wire.encode_beacon(7, pv())
        addr, decoded = wire.decode_beacon(data)
        assert addr == 7
        assert decoded.position.x == pytest.approx(123.45, abs=0.01)

    def test_size_matches_accounting(self):
        assert len(wire.encode_beacon(7, pv())) == wire.beacon_size()

    def test_wrong_type_rejected(self):
        data = wire.encode_gbc(
            source_addr=1,
            sequence_number=1,
            source_pv=pv(),
            area=CircularArea(Position(0, 0), 1.0),
            payload="x",
            lifetime=60.0,
            created_at=0.0,
            rhl=10,
        )
        with pytest.raises(wire.WireError):
            wire.decode_beacon(data)


class TestGbcCodec:
    def make(self, payload="hazard-warning", rhl=10):
        return wire.encode_gbc(
            source_addr=99,
            sequence_number=1234,
            source_pv=pv(),
            area=RectangularArea(0.0, 4000.0, 0.0, 10.0),
            payload=payload,
            lifetime=60.0,
            created_at=5.5,
            rhl=rhl,
        )

    def test_round_trip(self):
        fields = wire.decode_gbc(self.make())
        assert fields["source_addr"] == 99
        assert fields["sequence_number"] == 1234
        assert fields["payload"] == "hazard-warning"
        assert fields["lifetime"] == pytest.approx(60.0)
        assert fields["rhl"] == 10

    def test_rhl_is_plain_header_byte(self):
        """The wire layout itself exhibits vulnerability #3: RHL sits in the
        unprotected basic header, before any signed content."""
        data = bytearray(self.make(rhl=10))
        data[2] = 1  # flip RHL to 1 in place
        fields = wire.decode_gbc(bytes(data))
        assert fields["rhl"] == 1
        assert fields["payload"] == "hazard-warning"  # body untouched

    def test_size_matches_accounting(self):
        payload = "some payload with bytes"
        assert len(self.make(payload)) == wire.gbc_size(payload)

    def test_unicode_payload(self):
        fields = wire.decode_gbc(self.make(payload="warnung-überholen"))
        assert fields["payload"] == "warnung-überholen"

    def test_truncated_rejected(self):
        with pytest.raises(wire.WireError):
            wire.decode_gbc(self.make()[:-80])


class TestSizes:
    def test_beacon_fits_dsrc_frame(self):
        assert wire.beacon_size() < 200

    def test_encryption_overhead_positive(self):
        assert wire.ENCRYPTION_OVERHEAD > 0


class TestGucCodec:
    def make(self, rhl=10):
        return wire.encode_guc(
            source_addr=11,
            sequence_number=77,
            source_pv=pv(),
            dest_addr=22,
            dest_position=Position(2000.0, 5.0),
            payload="unicast-payload",
            lifetime=60.0,
            created_at=1.25,
            rhl=rhl,
        )

    def test_round_trip(self):
        fields = wire.decode_guc(self.make())
        assert fields["source_addr"] == 11
        assert fields["dest_addr"] == 22
        assert fields["dest_position"].x == pytest.approx(2000.0)
        assert fields["payload"] == "unicast-payload"
        assert fields["rhl"] == 10

    def test_type_checked(self):
        with pytest.raises(wire.WireError):
            wire.decode_gbc(self.make())

    def test_rhl_mutable_in_header(self):
        data = bytearray(self.make(rhl=9))
        data[2] = 2
        assert wire.decode_guc(bytes(data))["rhl"] == 2


class TestLsRequestCodec:
    def test_round_trip(self):
        data = wire.encode_ls_request(
            source_addr=5,
            sequence_number=3,
            source_pv=pv(),
            target_addr=99,
            created_at=8.5,
            rhl=10,
        )
        fields = wire.decode_ls_request(data)
        assert fields["source_addr"] == 5
        assert fields["target_addr"] == 99
        assert fields["created_at"] == pytest.approx(8.5)
        assert fields["rhl"] == 10

    def test_truncation_rejected(self):
        data = wire.encode_ls_request(
            source_addr=5,
            sequence_number=3,
            source_pv=pv(),
            target_addr=99,
            created_at=8.5,
            rhl=10,
        )
        with pytest.raises(wire.WireError):
            wire.decode_ls_request(data[:20])


class TestShbCodec:
    def test_round_trip(self):
        data = wire.encode_shb(
            source_addr=8, sequence_number=2, pv=pv(), payload="cam"
        )
        fields = wire.decode_shb(data)
        assert fields["source_addr"] == 8
        assert fields["sequence_number"] == 2
        assert fields["payload"] == "cam"

    def test_size_matches_accounting(self):
        data = wire.encode_shb(
            source_addr=8, sequence_number=2, pv=pv(), payload="cam-payload"
        )
        assert len(data) == wire.shb_size("cam-payload")

    def test_type_checked(self):
        with pytest.raises(wire.WireError):
            wire.decode_shb(wire.encode_beacon(1, pv()))
