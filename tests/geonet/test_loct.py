"""Tests for the location table."""

import pytest

from repro.geo.position import Position, PositionVector
from repro.geonet.loct import LocationTable


def pv(x, t=0.0, speed=0.0):
    return PositionVector(Position(x, 0.0), speed=speed, heading=0.0, timestamp=t)


def test_update_creates_entry():
    loct = LocationTable(ttl=20.0)
    loct.update(1, pv(100), now=0.0)
    entry = loct.get(1, now=0.0)
    assert entry is not None
    assert entry.position == Position(100, 0)


def test_entry_expires_after_ttl():
    loct = LocationTable(ttl=20.0)
    loct.update(1, pv(100), now=0.0)
    assert loct.get(1, now=20.0) is not None  # inclusive boundary
    assert loct.get(1, now=20.01) is None


def test_update_refreshes_ttl():
    loct = LocationTable(ttl=20.0)
    loct.update(1, pv(100), now=0.0)
    loct.update(1, pv(130), now=15.0)
    entry = loct.get(1, now=30.0)
    assert entry is not None
    assert entry.position.x == 130


def test_update_replaces_pv():
    loct = LocationTable(ttl=20.0)
    loct.update(1, pv(100, t=0.0), now=0.0)
    loct.update(1, pv(200, t=3.0), now=3.0)
    assert loct.get(1, now=3.0).pv.timestamp == 3.0


def test_live_entries_skips_expired():
    loct = LocationTable(ttl=10.0)
    loct.update(1, pv(100), now=0.0)
    loct.update(2, pv(200), now=5.0)
    live = {e.addr for e in loct.live_entries(now=12.0)}
    assert live == {2}


def test_purge_removes_expired_physically():
    loct = LocationTable(ttl=10.0)
    loct.update(1, pv(100), now=0.0)
    loct.update(2, pv(200), now=5.0)
    assert loct.purge(now=12.0) == 1
    assert len(loct) == 1
    assert 1 not in loct
    assert 2 in loct


def test_remove():
    loct = LocationTable(ttl=10.0)
    loct.update(1, pv(100), now=0.0)
    loct.remove(1)
    assert loct.get(1, now=0.0) is None
    loct.remove(1)  # idempotent


def test_stored_pv_is_never_extrapolated():
    """The table returns the advertised PV as-is — GF acting on stale
    positions is the behaviour the paper's attacks and baselines rely on."""
    loct = LocationTable(ttl=20.0)
    loct.update(1, pv(100, t=0.0, speed=30.0), now=0.0)
    entry = loct.get(1, now=10.0)
    assert entry.position.x == 100  # not 400


def test_invalid_ttl_rejected():
    with pytest.raises(ValueError):
        LocationTable(ttl=0.0)


def test_len_counts_all_entries_even_expired():
    loct = LocationTable(ttl=1.0)
    loct.update(1, pv(1), now=0.0)
    loct.update(2, pv(2), now=0.0)
    assert len(loct) == 2


def test_entries_are_neighbors_by_default():
    loct = LocationTable(ttl=20.0)
    entry = loct.update(1, pv(100), now=0.0)
    assert entry.is_neighbor


def test_indirect_update_not_a_neighbor():
    loct = LocationTable(ttl=20.0)
    entry = loct.update(1, pv(100), now=0.0, neighbor=False)
    assert not entry.is_neighbor


def test_indirect_update_never_downgrades_neighbor():
    loct = LocationTable(ttl=20.0)
    loct.update(1, pv(100), now=0.0)  # heard a beacon: neighbor
    entry = loct.update(1, pv(130), now=1.0, neighbor=False)  # then via LS
    assert entry.is_neighbor


def test_beacon_upgrades_indirect_entry():
    loct = LocationTable(ttl=20.0)
    loct.update(1, pv(100), now=0.0, neighbor=False)
    entry = loct.update(1, pv(130), now=1.0, neighbor=True)
    assert entry.is_neighbor


def test_contains_is_liveness_aware():
    loct = LocationTable(ttl=10.0)
    loct.update(1, pv(100), now=0.0)
    assert loct.contains(1, now=5.0)
    assert not loct.contains(1, now=10.01)  # expired
    assert not loct.contains(2, now=5.0)  # never seen
    # __contains__ stays physical (storage membership, time-free).
    assert 1 in loct


def test_update_opportunistically_purges_expired_entries():
    loct = LocationTable(ttl=10.0)  # purge interval defaults to ttl
    loct.update(1, pv(100), now=0.0)
    loct.update(2, pv(200), now=25.0)  # past the purge point: 1 is dropped
    assert 1 not in loct
    assert 2 in loct


def test_purge_is_rate_limited_between_intervals():
    loct = LocationTable(ttl=10.0)
    loct.update(1, pv(100), now=0.0)
    loct.update(2, pv(200), now=12.0)  # purge fires (1 still live till 10... dead)
    loct.update(3, pv(300), now=13.0)  # within the interval: no purge yet
    # Entry 2 expires at 22; a dead entry added right before the next purge
    # point survives only until that purge.
    loct.update(4, pv(400), now=23.0)
    assert 2 not in loct
    assert {3, 4} <= set(loct._entries)


def test_table_stays_bounded_under_churn():
    """A long-lived node that hears a stream of one-off neighbors must not
    accumulate one entry per address forever."""
    loct = LocationTable(ttl=10.0)
    for addr in range(1000):
        loct.update(addr, pv(addr), now=float(addr))
    # Physical size is bounded by the addresses heard within one
    # ttl + purge_interval window, not by the 1000 ever heard.
    assert len(loct) <= 21


def test_custom_purge_interval():
    loct = LocationTable(ttl=10.0, purge_interval=2.0)
    loct.update(1, pv(100), now=0.0)
    loct.update(2, pv(200), now=12.5)
    assert 1 not in loct


# ----------------------------------------------------------------------
# update_many (bulk refresh)
# ----------------------------------------------------------------------
def test_update_many_matches_repeated_update():
    bulk = LocationTable(ttl=20.0)
    single = LocationTable(ttl=20.0)
    pairs = [(a, pv(100 + a, t=5.0)) for a in range(1, 30)]
    bulk.update_many(pairs, now=5.0)
    for addr, p in pairs:
        single.update(addr, p, now=5.0)
    assert len(bulk) == len(single)
    for addr, _p in pairs:
        be, se = bulk.get(addr, now=5.0), single.get(addr, now=5.0)
        assert (be.pv, be.updated_at, be.expires_at, be.is_neighbor) == (
            se.pv,
            se.updated_at,
            se.expires_at,
            se.is_neighbor,
        )


def test_update_many_refreshes_existing_entries():
    loct = LocationTable(ttl=20.0)
    loct.update(1, pv(100, t=0.0), now=0.0)
    loct.update_many([(1, pv(150, t=10.0)), (2, pv(200, t=10.0))], now=10.0)
    entry = loct.get(1, now=10.0)
    assert entry.position == Position(150, 0)
    assert entry.expires_at == 30.0
    assert loct.get(2, now=10.0) is not None


def test_update_many_runs_opportunistic_purge():
    """The bulk path keeps the PR 2 purge piggyback: one purge per batch."""
    loct = LocationTable(ttl=20.0)
    loct.update(1, pv(100, t=0.0), now=0.0)  # expires at 20
    # At t=50 the purge interval (one TTL) has long elapsed; the bulk
    # update must physically drop the dead entry before inserting.
    loct.update_many([(2, pv(200, t=50.0))], now=50.0)
    assert 1 not in loct
    assert 2 in loct


def test_update_many_never_downgrades_neighbor_flag():
    loct = LocationTable(ttl=20.0)
    loct.update(1, pv(100, t=0.0), now=0.0, neighbor=True)
    loct.update_many([(1, pv(120, t=1.0))], now=1.0, neighbor=False)
    assert loct.get(1, now=1.0).is_neighbor is True
