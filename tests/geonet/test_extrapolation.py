"""Tests for the optional LocTE PV extrapolation in GF ranking."""

from repro.geo.areas import CircularArea
from repro.geo.position import Position, PositionVector
from repro.geonet.config import GeoNetConfig
from repro.geonet.gf import GreedyForwarder
from repro.geonet.loct import LocationTable

DEST = CircularArea(Position(2000.0, 0.0), 20.0)


def moving_pv(x, speed, heading, t):
    return PositionVector(Position(x, 0.0), speed=speed, heading=heading, timestamp=t)


def make_gf(extrapolation: bool):
    config = GeoNetConfig(loct_extrapolation=extrapolation)
    loct = LocationTable(ttl=config.loct_ttl)
    return GreedyForwarder(config, loct), loct


def test_extrapolation_is_off_by_default():
    assert GeoNetConfig().loct_extrapolation is False


def test_without_extrapolation_ranking_uses_advertised_position():
    gf, loct = make_gf(extrapolation=False)
    # Advertised at 300 but moving east fast: at t=10 it is really at 600.
    loct.update(1, moving_pv(300, 30.0, 0.0, t=0.0), now=0.0)
    loct.update(2, moving_pv(400, 0.0, 0.0, t=0.0), now=0.0)
    selection = gf.select_next_hop(Position(0, 0), DEST, now=10.0)
    assert selection.next_hop.addr == 2  # 400 advertised beats 300 advertised


def test_with_extrapolation_ranking_uses_current_position():
    gf, loct = make_gf(extrapolation=True)
    loct.update(1, moving_pv(300, 30.0, 0.0, t=0.0), now=0.0)  # now at 600
    loct.update(2, moving_pv(400, 0.0, 0.0, t=0.0), now=0.0)  # still at 400
    selection = gf.select_next_hop(Position(0, 0), DEST, now=10.0)
    assert selection.next_hop.addr == 1


def test_extrapolation_matches_advertised_for_fresh_entries():
    for flag in (True, False):
        gf, loct = make_gf(extrapolation=flag)
        loct.update(1, moving_pv(300, 30.0, 0.0, t=10.0), now=10.0)
        selection = gf.select_next_hop(Position(0, 0), DEST, now=10.0)
        assert selection.next_hop.addr == 1


def test_extrapolation_does_not_defeat_the_beacon_replay():
    """The attack's replayed beacons are fresh, so extrapolation leaves the
    poisoned entry where the out-of-range vehicle advertised itself — the
    attack works under either setting."""
    for flag in (True, False):
        gf, loct = make_gf(extrapolation=flag)
        # Real neighbor 400 m east; replayed (authentic, fresh) beacon of a
        # vehicle 900 m east, far outside radio range.
        loct.update(1, moving_pv(400, 30.0, 0.0, t=9.999), now=9.999)
        loct.update(2, moving_pv(900, 30.0, 0.0, t=9.998), now=9.999)
        selection = gf.select_next_hop(Position(0, 0), DEST, now=10.0)
        assert selection.next_hop.addr == 2


def plausibility_gf(extrapolation: bool):
    config = GeoNetConfig(
        loct_extrapolation=extrapolation,
        plausibility_check=True,
        plausibility_threshold=486.0,
    )
    loct = LocationTable(ttl=config.loct_ttl)
    return GreedyForwarder(config, loct), loct


def test_plausibility_check_evaluates_the_extrapolated_position():
    """With extrapolation on, GF ranks (and would forward toward) the
    dead-reckoned position — so the mitigation must judge that same
    position.  An entry advertised within the threshold but extrapolated
    far beyond it is exactly the kind of unreachable next hop the §V-A
    check exists to reject."""
    gf, loct = plausibility_gf(extrapolation=True)
    # Advertised at 450 (within 486), extrapolated to 450 + 30*20 = 1050.
    loct.update(1, moving_pv(450, 30.0, 0.0, t=0.0), now=0.0)
    selection = gf.select_next_hop(Position(0, 0), DEST, now=20.0)
    assert selection.next_hop is None
    assert selection.rejected_by_plausibility == 1


def test_plausibility_check_and_ranking_agree_on_the_chosen_candidate():
    """A slow mover whose extrapolated position stays plausible is still
    accepted; the filter and the ranking see identical coordinates."""
    gf, loct = plausibility_gf(extrapolation=True)
    loct.update(1, moving_pv(400, 2.0, 0.0, t=0.0), now=0.0)  # at 440 now
    selection = gf.select_next_hop(Position(0, 0), DEST, now=20.0)
    assert selection.next_hop is not None
    assert selection.next_hop.addr == 1
    assert selection.rejected_by_plausibility == 0


def test_plausibility_check_uses_advertised_position_without_extrapolation():
    """Default mode is unchanged: the check keys on the advertised (beacon)
    position, as the paper's §V-A baseline does."""
    gf, loct = plausibility_gf(extrapolation=False)
    loct.update(1, moving_pv(450, 30.0, 0.0, t=0.0), now=0.0)
    selection = gf.select_next_hop(Position(0, 0), DEST, now=20.0)
    assert selection.next_hop is not None
    assert selection.rejected_by_plausibility == 0
