"""Tests for Contention-Based Forwarding."""

import pytest

from repro.geo.areas import RectangularArea
from repro.geo.position import Position, PositionVector
from repro.geonet.cbf import CbfForwarder, contention_timeout
from repro.geonet.config import GeoNetConfig
from repro.geonet.packets import GbcBody, GeoBroadcastPacket
from repro.security.ca import CertificateAuthority
from repro.security.signing import sign
from repro.sim.engine import Simulator

CONFIG = GeoNetConfig(to_min=0.001, to_max=0.100, dist_max=1283.0)
_CA = CertificateAuthority()
_CREDS = _CA.enroll("cbf-test-source")


def make_packet(seq=1, rhl=10, sender_x=0.0, created_at=0.0):
    body = GbcBody(
        source_addr=1,
        sequence_number=seq,
        source_pv=PositionVector(Position(0, 0), 0.0, 0.0, created_at),
        area=RectangularArea(-100, 5000, -50, 50),
        payload="flood",
        lifetime=60.0,
        created_at=created_at,
    )
    return GeoBroadcastPacket(
        signed=sign(body, _CREDS),
        rhl=rhl,
        sender_addr=1,
        sender_position=Position(sender_x, 0),
    )


class Harness:
    def __init__(self, x=300.0, config=CONFIG):
        self.sim = Simulator()
        self.delivered = []
        self.broadcasts = []
        self.cbf = CbfForwarder(
            sim=self.sim,
            config=config,
            get_position=lambda: Position(x, 0),
            deliver=self.delivered.append,
            broadcast=lambda p, rhl: self.broadcasts.append((p, rhl)),
        )


class TestContentionTimeout:
    def test_zero_distance_gives_to_max(self):
        assert contention_timeout(0.0, CONFIG) == pytest.approx(0.100)

    def test_dist_max_gives_to_min(self):
        assert contention_timeout(1283.0, CONFIG) == pytest.approx(0.001)

    def test_beyond_dist_max_clamps_to_min(self):
        assert contention_timeout(5000.0, CONFIG) == pytest.approx(0.001)

    def test_linear_in_between(self):
        half = contention_timeout(1283.0 / 2, CONFIG)
        assert half == pytest.approx((0.100 + 0.001) / 2)

    def test_farther_nodes_time_out_earlier(self):
        near = contention_timeout(100.0, CONFIG)
        far = contention_timeout(400.0, CONFIG)
        assert far < near

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            contention_timeout(-1.0, CONFIG)


class TestCbfStateMachine:
    def test_first_reception_delivers_and_buffers(self):
        h = Harness()
        packet = make_packet()
        h.cbf.handle_broadcast(packet)
        assert len(h.delivered) == 1
        assert h.cbf.is_buffered(packet.packet_id)

    def test_timer_expiry_rebroadcasts_with_decremented_rhl(self):
        h = Harness(x=300.0)
        h.cbf.handle_broadcast(make_packet(rhl=10))
        h.sim.run_until(0.2)
        assert len(h.broadcasts) == 1
        _packet, rhl = h.broadcasts[0]
        assert rhl == 9

    def test_timer_matches_distance_formula(self):
        h = Harness(x=300.0)
        h.cbf.handle_broadcast(make_packet())
        h.sim.run()
        expected = contention_timeout(300.0, CONFIG)
        assert h.sim.now == pytest.approx(expected)

    def test_duplicate_before_expiry_cancels(self):
        h = Harness()
        packet = make_packet(rhl=10)
        h.cbf.handle_broadcast(packet)
        duplicate = packet.next_hop_copy(
            rhl=9, sender_addr=2, sender_position=Position(400, 0)
        )
        h.cbf.handle_broadcast(duplicate)
        h.sim.run_until(0.5)
        assert h.broadcasts == []
        assert h.cbf.stats.suppressed_by_duplicate == 1
        assert len(h.delivered) == 1  # delivered once, on first reception

    def test_duplicate_after_forwarding_is_ignored(self):
        h = Harness()
        packet = make_packet()
        h.cbf.handle_broadcast(packet)
        h.sim.run_until(0.5)  # timer expires, rebroadcast happens
        h.cbf.handle_broadcast(packet)
        assert len(h.broadcasts) == 1
        assert h.cbf.stats.late_duplicates_ignored == 1

    def test_rhl_one_delivers_but_never_forwards(self):
        h = Harness()
        h.cbf.handle_broadcast(make_packet(rhl=1))
        h.sim.run_until(0.5)
        assert len(h.delivered) == 1
        assert h.broadcasts == []
        assert h.cbf.stats.rhl_exhausted == 1

    def test_different_sequence_numbers_are_independent(self):
        h = Harness()
        h.cbf.handle_broadcast(make_packet(seq=1))
        h.cbf.handle_broadcast(make_packet(seq=2))
        h.sim.run_until(0.5)
        assert len(h.broadcasts) == 2

    def test_expired_packet_not_forwarded(self):
        h = Harness()
        h.sim.schedule(
            61.0, lambda: h.cbf.handle_broadcast(make_packet(created_at=0.0))
        )
        h.sim.run_until(62.0)
        assert len(h.delivered) == 1  # still delivered to the application
        assert h.broadcasts == []

    def test_originate_broadcasts_without_decrement(self):
        h = Harness()
        h.cbf.originate(make_packet(rhl=10))
        assert h.broadcasts[0][1] == 10

    def test_originate_marks_done(self):
        h = Harness()
        packet = make_packet()
        h.cbf.originate(packet)
        h.cbf.handle_broadcast(packet)  # echo of our own flood
        assert len(h.delivered) == 0
        assert h.cbf.stats.late_duplicates_ignored == 1

    def test_mark_done_prevents_buffering(self):
        h = Harness()
        packet = make_packet()
        h.cbf.mark_done(packet.packet_id)
        h.cbf.handle_broadcast(packet)
        assert not h.cbf.is_buffered(packet.packet_id)
        assert h.delivered == []

    def test_shutdown_cancels_pending_timers(self):
        h = Harness()
        h.cbf.handle_broadcast(make_packet())
        h.cbf.shutdown()
        h.sim.run_until(0.5)
        assert h.broadcasts == []


class TestRhlCheck:
    def make_checked(self, x=300.0, threshold=3):
        config = GeoNetConfig(
            to_min=0.001,
            to_max=0.100,
            dist_max=1283.0,
            rhl_check=True,
            rhl_drop_threshold=threshold,
        )
        return Harness(x=x, config=config)

    def test_steep_rhl_drop_not_accepted_as_duplicate(self):
        h = self.make_checked()
        packet = make_packet(rhl=10)
        h.cbf.handle_broadcast(packet)
        attack_copy = packet.next_hop_copy(
            rhl=1, sender_addr=1, sender_position=Position(0, 0)
        )
        h.cbf.handle_broadcast(attack_copy)
        h.sim.run_until(0.5)
        assert len(h.broadcasts) == 1  # still forwarded
        assert h.cbf.stats.rhl_check_rejections == 1

    def test_legitimate_peer_duplicate_still_suppresses(self):
        h = self.make_checked()
        packet = make_packet(rhl=10)
        h.cbf.handle_broadcast(packet)
        peer_copy = packet.next_hop_copy(
            rhl=9, sender_addr=3, sender_position=Position(500, 0)
        )
        h.cbf.handle_broadcast(peer_copy)
        h.sim.run_until(0.5)
        assert h.broadcasts == []
        assert h.cbf.stats.suppressed_by_duplicate == 1

    def test_drop_at_threshold_accepted(self):
        h = self.make_checked(threshold=3)
        packet = make_packet(rhl=10)
        h.cbf.handle_broadcast(packet)
        borderline = packet.next_hop_copy(
            rhl=7, sender_addr=3, sender_position=Position(500, 0)
        )
        h.cbf.handle_broadcast(borderline)
        h.sim.run_until(0.5)
        assert h.broadcasts == []


class TestDoneSetExpiry:
    """The duplicate-detection memory is bounded by packet lifetime."""

    @staticmethod
    def sweep(h, now):
        """Force an immediate sweep (tests bypass the rate-limit gate)."""
        h.cbf._next_done_sweep = 0.0
        h.cbf._sweep_done(now)

    def test_done_entry_expires_after_lifetime_plus_grace(self):
        h = Harness()
        packet = make_packet(seq=1, created_at=0.0)  # lifetime 60 s
        h.cbf.handle_broadcast(packet)
        h.sim.run_until(1.0)  # forwarded; now in _done
        assert h.cbf.has_processed(packet.packet_id)
        self.sweep(h, 61.5)  # past lifetime + grace
        assert not h.cbf.has_processed(packet.packet_id)

    def test_done_entry_survives_until_lifetime_end(self):
        h = Harness()
        packet = make_packet(seq=1, created_at=0.0)
        h.cbf.handle_broadcast(packet)
        h.sim.run_until(1.0)
        self.sweep(h, 59.0)  # still within lifetime: must be retained
        assert h.cbf.has_processed(packet.packet_id)

    def test_done_set_does_not_grow_without_bound(self):
        h = Harness()
        for seq in range(200):
            created = float(seq)
            h.sim.run_until(created + 0.5)
            h.cbf.handle_broadcast(
                make_packet(seq=seq, created_at=created, rhl=1)
            )
        # 200 packets were processed but the ones whose lifetime (60 s) has
        # lapsed were swept during later receptions.
        assert h.cbf.stats.first_receptions == 200
        assert len(h.cbf._done) < 80

    def test_mark_done_without_expiry_uses_default_lifetime(self):
        h = Harness()
        h.cbf.mark_done((9, 9))
        assert h.cbf.has_processed((9, 9))
        self.sweep(h, CONFIG.default_lifetime)  # still inside window
        assert h.cbf.has_processed((9, 9))
        self.sweep(h, CONFIG.default_lifetime + 2.0)
        assert not h.cbf.has_processed((9, 9))

    def test_mark_done_only_extends_never_shortens(self):
        h = Harness()
        h.cbf.mark_done((9, 9), expires_at=100.0)
        h.cbf.mark_done((9, 9), expires_at=10.0)  # later, shorter: ignored
        self.sweep(h, 50.0)
        assert h.cbf.has_processed((9, 9))


class TestCsmaDeferExhaustion:
    """A copy whose defer budget runs out gets exactly one terminal outcome."""

    def make_harness(self, busy, ledger=None):
        from repro.geonet.cbf import _MAX_CSMA_DEFERS  # noqa: F401

        sim = Simulator()
        delivered, broadcasts = [], []
        cbf = CbfForwarder(
            sim=sim,
            config=CONFIG,
            get_position=lambda: Position(300, 0),
            deliver=delivered.append,
            broadcast=lambda p, rhl: broadcasts.append((p, rhl)),
            medium_busy=busy,
            ledger=ledger,
        )
        return sim, cbf, broadcasts

    def test_exhausted_copy_is_dropped_not_force_broadcast(self):
        sim, cbf, broadcasts = self.make_harness(busy=lambda: True)
        cbf.handle_broadcast(make_packet())
        sim.run_until(5.0)
        from repro.geonet.cbf import _MAX_CSMA_DEFERS

        assert cbf.stats.csma_defers == _MAX_CSMA_DEFERS
        assert cbf.stats.csma_defer_exhaustions == 1
        assert broadcasts == []
        assert cbf._buffers == {}

    def test_medium_clearing_mid_budget_still_broadcasts(self):
        state = {"busy": True}
        sim, cbf, broadcasts = self.make_harness(busy=lambda: state["busy"])
        cbf.handle_broadcast(make_packet())
        # First expiry at ~0.077 s (300 m), defers every 1 ms:
        # clear the medium a few defers into the budget.
        sim.schedule(0.080, lambda: state.update(busy=False))
        sim.run_until(5.0)
        assert cbf.stats.csma_defer_exhaustions == 0
        assert len(broadcasts) == 1

    def test_exhaustion_is_a_terminal_ledger_outcome(self):
        from repro.observability.ledger import PacketLedger, reasons

        ledger = PacketLedger()
        sim, cbf, _ = self.make_harness(busy=lambda: True, ledger=ledger)
        packet = make_packet()
        ledger.originated("gbc", packet.packet_id, 0.0, 1)
        cbf.handle_broadcast(packet)
        sim.run_until(5.0)
        record = ledger.record("gbc", packet.packet_id)
        assert record.outcome == reasons.CBF_DEFER_EXHAUSTED
        # Conservation: exactly one terminal outcome for the one packet.
        assert sum(ledger.outcome_totals().values()) == len(ledger)

    def test_duplicate_during_defer_still_wins(self):
        from repro.observability.ledger import PacketLedger, reasons

        ledger = PacketLedger()
        sim, cbf, broadcasts = self.make_harness(
            busy=lambda: True, ledger=ledger
        )
        packet = make_packet(rhl=10)
        ledger.originated("gbc", packet.packet_id, 0.0, 1)
        cbf.handle_broadcast(packet)
        sim.run_until(0.080)  # a few defers in
        cbf.handle_broadcast(make_packet(rhl=9, sender_x=500.0))
        sim.run_until(5.0)
        assert cbf.stats.suppressed_by_duplicate == 1
        assert cbf.stats.csma_defer_exhaustions == 0
        record = ledger.record("gbc", packet.packet_id)
        assert record.outcome == reasons.CBF_SUPPRESSED
        assert sum(ledger.outcome_totals().values()) == len(ledger)
