"""Tests for Single-Hop Broadcast (CAM/BSM-style messages)."""

import pytest

from repro.geonet.shb import ShbService


def attach(node):
    service = ShbService(node)
    received = []
    service.on_receive.append(lambda n, body: received.append(body))
    return service, received


def test_shb_reaches_direct_neighbors_only(testbed):
    a = testbed.add_node(0.0)
    b = testbed.add_node(300.0)
    far = testbed.add_node(900.0)
    sa, _ = attach(a)
    _sb, got_b = attach(b)
    _sf, got_far = attach(far)
    testbed.warm_up()
    sa.send("brake warning")
    testbed.sim.run_until(testbed.sim.now + 1.0)
    assert [body.payload for body in got_b] == ["brake warning"]
    assert got_far == []  # single hop: never forwarded


def test_shb_is_never_rebroadcast(testbed):
    nodes = testbed.chain(4, 300.0, beaconing=False)
    services = [attach(n)[0] for n in nodes]
    sent_before = testbed.channel.stats.frames_sent
    services[0].send("one-shot")
    testbed.sim.run_until(testbed.sim.now + 1.0)
    assert testbed.channel.stats.frames_sent == sent_before + 1


def test_shb_updates_location_table(testbed):
    a = testbed.add_node(0.0, beaconing=False)
    b = testbed.add_node(300.0)
    sa, _ = attach(a)
    attach(b)
    testbed.sim.run_until(1.0)
    assert a.address not in b.router.loct  # no beacons from a
    sa.send("implicit beacon")
    testbed.sim.run_until(testbed.sim.now + 1.0)
    entry = b.router.loct.get(a.address, testbed.sim.now)
    assert entry is not None


def test_periodic_shb_at_10hz(testbed):
    a = testbed.add_node(0.0)
    b = testbed.add_node(100.0)
    sa, _ = attach(a)
    _sb, got = attach(b)
    sa.start_periodic(lambda: "cam", rate_hz=10.0)
    testbed.sim.run_until(2.5)
    assert 20 <= len(got) <= 26
    sa.stop()
    count = len(got)
    testbed.sim.run_until(5.0)
    assert len(got) == count


def test_periodic_cannot_start_twice(testbed):
    a = testbed.add_node(0.0)
    sa, _ = attach(a)
    sa.start_periodic(lambda: "x")
    with pytest.raises(RuntimeError):
        sa.start_periodic(lambda: "y")


def test_invalid_rate_rejected(testbed):
    sa, _ = attach(testbed.add_node(0.0))
    with pytest.raises(ValueError):
        sa.start_periodic(lambda: "x", rate_hz=0.0)


def test_own_shb_not_delivered_to_self(testbed):
    a = testbed.add_node(0.0)
    testbed.add_node(100.0)
    sa, got = attach(a)
    testbed.warm_up()
    sa.send("self")
    testbed.sim.run_until(testbed.sim.now + 1.0)
    assert got == []


def test_nodes_without_shb_service_ignore_shbs(testbed):
    a = testbed.add_node(0.0)
    plain = testbed.add_node(200.0)  # no ShbService attached
    sa, _ = attach(a)
    testbed.warm_up()
    sa.send("ignored gracefully")
    testbed.sim.run_until(testbed.sim.now + 1.0)
    # No crash, and the plain node's beacon path still works.
    assert a.address in plain.router.loct


def test_shb_sequence_numbers_increase(testbed):
    sa, _ = attach(testbed.add_node(0.0))
    first = sa.send("a")
    second = sa.send("b")
    assert second > first
