"""Tests for the reactive DCC access-layer gate."""

import pytest

from repro.errors import ConfigError
from repro.geonet.config import GeoNetConfig
from repro.geonet.dcc import DccGate
from repro.sim.engine import Simulator

CONFIG = GeoNetConfig(
    dcc_enabled=True,
    dcc_cbr_alpha=0.5,
    dcc_cbr_low=0.30,
    dcc_cbr_high=0.60,
    dcc_gap_relaxed=0.0,
    dcc_gap_active=0.1,
    dcc_gap_restrictive=0.5,
)


class Harness:
    def __init__(self, config=CONFIG):
        self.sim = Simulator()
        self.busy = False
        self.gate = DccGate(self.sim, config, lambda: self.busy)


def make_gate(config=CONFIG):
    return Harness(config)


class TestMeasurement:
    def test_cbr_is_ewma_of_samples(self):
        h = make_gate()
        h.busy = True
        h.gate.observe(1.0)
        assert h.gate.cbr == pytest.approx(0.5)
        h.gate.observe(2.0)
        assert h.gate.cbr == pytest.approx(0.75)
        h.busy = False
        h.gate.observe(3.0)
        assert h.gate.cbr == pytest.approx(0.375)

    def test_one_sample_per_instant(self):
        h = make_gate()
        h.busy = True
        h.gate.observe(1.0)
        h.gate.observe(1.0)  # same instant: no second sample
        assert h.gate.stats.samples == 1
        assert h.gate.cbr == pytest.approx(0.5)

    def test_state_thresholds_select_gaps(self):
        h = make_gate()
        assert h.gate.min_gap() == 0.0  # relaxed at cbr 0
        h.gate._cbr = 0.5
        assert h.gate.min_gap() == pytest.approx(0.1)
        h.gate._cbr = 0.9
        assert h.gate.min_gap() == pytest.approx(0.5)


class TestGating:
    def test_relaxed_state_admits_everything(self):
        h = make_gate()
        for t in (0.0, 0.01, 0.02):
            assert h.gate.allow(t)
        assert h.gate.stats.tx_throttled == 0

    def test_busy_channel_enforces_min_gap(self):
        h = make_gate()
        h.busy = True
        # Every allow() samples a busy channel, pushing the CBR estimate
        # through active (0.5) into restrictive (0.75, 0.875, ...).
        assert h.gate.allow(0.01)  # first tx: no prior tx to gap against
        assert not h.gate.allow(0.2)  # 0.19 s later: inside the 0.5 s gap
        assert h.gate.allow(0.60)  # 0.59 s later: admitted
        assert h.gate.stats.tx_throttled == 1
        assert h.gate.stats.tx_allowed == 2

    def test_reset_state_wipes_estimate_and_gap(self):
        h = make_gate()
        h.busy = True
        h.gate.observe(0.0)
        h.gate.allow(0.01)
        h.gate.reset_state()
        assert h.gate.cbr == 0.0
        h.busy = False
        assert h.gate.allow(0.02)  # relaxed again, no carried-over last-tx


class TestConfigValidation:
    def test_alpha_must_be_in_unit_interval(self):
        with pytest.raises(ConfigError):
            GeoNetConfig(dcc_cbr_alpha=0.0)

    def test_thresholds_must_be_ordered(self):
        with pytest.raises(ConfigError):
            GeoNetConfig(dcc_cbr_low=0.7, dcc_cbr_high=0.6)

    def test_gaps_must_be_monotone(self):
        with pytest.raises(ConfigError):
            GeoNetConfig(dcc_gap_active=0.5, dcc_gap_restrictive=0.1)

    def test_variant_names_validated(self):
        with pytest.raises(ConfigError):
            GeoNetConfig(cbf_variant="flooding")
