"""Tests for pseudonym rotation (the §II privacy feature)."""

import pytest

from repro.security.pseudonym import PseudonymPool


def make_pool(testbed):
    return PseudonymPool(testbed.streams.get("pseudonyms"))


def add_rotating_node(testbed, x, period=None):
    from repro.geo.position import Position
    from repro.geonet.node import GeoNode, StaticMobility
    from repro.radio.technology import DSRC

    return GeoNode(
        sim=testbed.sim,
        channel=testbed.channel,
        config=testbed.config,
        credentials=testbed.ca.enroll(f"rotating-{x}"),
        mobility=StaticMobility(Position(x, 0.0)),
        tx_range=DSRC.nlos_median_m,
        rng=testbed.streams.get(f"beacon:rot{x}"),
        name=f"rotating-{x}",
        pseudonym_pool=make_pool(testbed),
        pseudonym_period=period,
    )


def test_manual_rotation_changes_address(testbed):
    node = add_rotating_node(testbed, 0.0)
    old = node.address
    new = node.rotate_pseudonym()
    assert new != old
    assert node.address == new
    assert PseudonymPool.is_pseudonym(new)
    assert node.pseudonyms_used == 2


def test_rotation_requires_pool(testbed):
    node = testbed.add_node(0.0)
    with pytest.raises(RuntimeError):
        node.rotate_pseudonym()


def test_periodic_rotation_rotates(testbed):
    node = add_rotating_node(testbed, 0.0, period=10.0)
    testbed.sim.run_until(35.0)
    assert node.pseudonyms_used == 4  # rotations at t=10, 20, 30


def test_neighbors_learn_the_new_identity(testbed):
    observer = testbed.add_node(100.0)
    node = add_rotating_node(testbed, 0.0)
    testbed.warm_up()
    old = node.address
    new = node.rotate_pseudonym()
    testbed.sim.run_until(testbed.sim.now + 1.0)
    assert observer.router.loct.get(new, testbed.sim.now) is not None
    # The old identity lingers as a stale entry until its TTL runs out —
    # rotation does not scrub remote state.
    assert observer.router.loct.get(old, testbed.sim.now) is not None
    testbed.sim.run_until(testbed.sim.now + 21.0)
    assert observer.router.loct.get(old, testbed.sim.now) is None


def test_unicast_to_old_pseudonym_is_lost(testbed):
    sender = testbed.add_node(100.0)
    node = add_rotating_node(testbed, 0.0)
    testbed.warm_up()
    old = node.address
    node.rotate_pseudonym()
    lost_before = testbed.channel.stats.unicast_lost
    sender.iface.send(
        __import__("repro.radio.frames", fromlist=["FrameKind"]).FrameKind.GEO_UNICAST,
        "stale-session",
        dest_addr=old,
    )
    testbed.sim.run_until(testbed.sim.now + 1.0)
    assert testbed.channel.stats.unicast_lost == lost_before + 1


def test_rotation_after_shutdown_is_noop(testbed):
    node = add_rotating_node(testbed, 0.0)
    node.shutdown()
    address = node.address
    assert node.rotate_pseudonym() == address


def test_rotation_period_requires_pool(testbed):
    from repro.geo.position import Position
    from repro.geonet.node import GeoNode, StaticMobility

    with pytest.raises(ValueError):
        GeoNode(
            sim=testbed.sim,
            channel=testbed.channel,
            config=testbed.config,
            credentials=testbed.ca.enroll("bad"),
            mobility=StaticMobility(Position(0, 0)),
            tx_range=486.0,
            rng=testbed.streams.get("beacon:bad"),
            pseudonym_period=10.0,
        )
