"""Tests for the mitigation predicates."""

import pytest

from repro.geo.position import Position
from repro.geonet.checks import duplicate_rhl_plausible, position_plausible


class TestPositionPlausible:
    def test_within_threshold(self):
        assert position_plausible(Position(0, 0), Position(400, 0), 486.0)

    def test_boundary_inclusive(self):
        assert position_plausible(Position(0, 0), Position(486, 0), 486.0)

    def test_beyond_threshold(self):
        assert not position_plausible(Position(0, 0), Position(487, 0), 486.0)

    def test_replayed_far_beacon_fails(self):
        # The inter-area attack advertises a node ~654 m away to a victim
        # with 486 m of range: the check kills exactly that.
        assert not position_plausible(Position(0, 0), Position(654, 0), 486.0)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            position_plausible(Position(0, 0), Position(1, 0), 0.0)


class TestDuplicateRhlPlausible:
    def test_one_hop_drop_accepted(self):
        assert duplicate_rhl_plausible(10, 9, 3)

    def test_drop_at_threshold_accepted(self):
        assert duplicate_rhl_plausible(10, 7, 3)

    def test_steep_drop_rejected(self):
        assert not duplicate_rhl_plausible(10, 1, 3)

    def test_equal_rhl_accepted(self):
        assert duplicate_rhl_plausible(10, 10, 3)

    def test_higher_rhl_accepted(self):
        # A duplicate with a *larger* RHL is even fresher — plausible.
        assert duplicate_rhl_plausible(8, 10, 3)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            duplicate_rhl_plausible(10, 9, 0)
