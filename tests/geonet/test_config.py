"""Tests for GeoNetConfig validation and helpers."""

import pytest

from repro.geonet.config import GeoNetConfig


def test_paper_defaults():
    config = GeoNetConfig()
    assert config.beacon_period == 3.0
    assert config.beacon_jitter == 0.75
    assert config.loct_ttl == 20.0
    assert config.to_min == 0.001
    assert config.to_max == 0.100
    assert config.default_rhl == 10
    assert not config.plausibility_check
    assert not config.rhl_check
    assert config.rhl_drop_threshold == 3


@pytest.mark.parametrize(
    "kwargs",
    [
        {"beacon_period": 0},
        {"beacon_jitter": -1},
        {"loct_ttl": 0},
        {"to_min": 0},
        {"to_min": 0.2, "to_max": 0.1},
        {"dist_max": 0},
        {"default_rhl": 0},
        {"default_lifetime": 0},
        {"plausibility_threshold": 0},
        {"rhl_drop_threshold": 0},
        {"gf_recheck_interval": 0},
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ValueError):
        GeoNetConfig(**kwargs)


def test_with_mitigations_flips_flags_without_mutating_original():
    base = GeoNetConfig()
    both = base.with_mitigations(plausibility_check=True, rhl_check=True)
    assert both.plausibility_check and both.rhl_check
    assert not base.plausibility_check and not base.rhl_check


def test_with_mitigations_partial():
    config = GeoNetConfig().with_mitigations(rhl_check=True)
    assert config.rhl_check
    assert not config.plausibility_check
