"""Unit tests for the struct-of-arrays fleet and the batched beacon tick."""

import random

import numpy as np
import pytest

from repro.geo.position import Position
from repro.geonet.fleet import FleetBeaconScheduler, FleetState
from repro.radio.channel import BroadcastChannel, RadioInterface
from repro.radio.frames import Frame, FrameKind
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


class Member:
    """A minimal fleet member: an interface plus a reception log."""

    def __init__(self, iface):
        self.iface = iface
        self.received = []
        self.active = True


def build_fleet(positions, tx_range=150.0, *, seed=1):
    sim = Simulator()
    channel = BroadcastChannel(sim, RandomStreams(seed))
    fleet = FleetState(channel, capacity=4)
    members = []
    for x, y in positions:
        p = Position(x, y)
        iface = RadioInterface(lambda p=p: p, tx_range)
        channel.register(iface)
        member = Member(iface)
        member.slot = fleet.add(
            member, iface, x=x, y=y, tx_range=tx_range
        )
        members.append(member)
    return sim, channel, fleet, members


def make_beacon(member, pv, now):
    return (b"beacon", (member.iface.address, pv))


def bulk_sink(member, batch, now):
    member.received.extend(batch)
    return len(batch)


def make_scheduler(sim, fleet, channel, *, rng_seed=7, **kwargs):
    kwargs.setdefault("period", 3.0)
    kwargs.setdefault("jitter", 0.75)
    kwargs.setdefault("tick", 0.1)
    kwargs.setdefault("make_beacon", make_beacon)
    kwargs.setdefault("bulk_sink", bulk_sink)
    return FleetBeaconScheduler(
        sim, fleet, channel, np.random.default_rng(rng_seed), **kwargs
    )


# ----------------------------------------------------------------------
# FleetState slots
# ----------------------------------------------------------------------
def test_slots_are_stable_and_recycled():
    sim, channel, fleet, members = build_fleet([(0, 0), (50, 0), (100, 0)])
    slots = [m.slot for m in members]
    assert len(set(slots)) == 3
    assert len(fleet) == 3
    fleet.remove(members[1].slot)
    assert len(fleet) == 2
    assert not fleet.alive[members[1].slot]
    # The freed slot is handed out again before any new one.
    p = Position(200.0, 0.0)
    iface = RadioInterface(lambda: p, 150.0)
    channel.register(iface)
    new = Member(iface)
    assert fleet.add(new, iface, x=200.0, y=0.0, tx_range=150.0) == members[1].slot


def test_capacity_grows_transparently():
    sim, channel, fleet, members = build_fleet([(0, 0)])
    assert fleet.capacity == 4
    for k in range(1, 20):
        p = Position(float(k * 10), 0.0)
        iface = RadioInterface(lambda p=p: p, 150.0)
        channel.register(iface)
        fleet.add(Member(iface), iface, x=p.x, y=p.y, tx_range=150.0)
    assert len(fleet) == 20
    assert fleet.capacity >= 20
    assert sorted(fleet.live_slots().tolist()) == list(range(20))


def test_remove_dead_slot_raises():
    sim, channel, fleet, members = build_fleet([(0, 0)])
    fleet.remove(members[0].slot)
    with pytest.raises(ValueError):
        fleet.remove(members[0].slot)


def test_fleet_membership_tracked_on_channel():
    sim, channel, fleet, members = build_fleet([(0, 0), (50, 0)])
    assert channel.nonfleet_interfaces() == []
    fleet.remove(members[0].slot)
    assert channel.nonfleet_interfaces() == [members[0].iface]


# ----------------------------------------------------------------------
# neighbor sweep
# ----------------------------------------------------------------------
def test_neighbor_pairs_matches_brute_force():
    rng = random.Random(13)
    positions = [
        (rng.uniform(-500, 500), rng.uniform(-500, 500)) for _ in range(120)
    ]
    sim, channel, fleet, members = build_fleet(positions)
    # Heterogeneous ranges exercise the per-sender radius masking.
    for m in members:
        fleet.tx_range[m.slot] = rng.uniform(60.0, 220.0)
    senders = fleet.live_slots()[::3]
    sidx, rslots, candidates = fleet.neighbor_pairs(senders)
    got = {
        (int(senders[i]), int(r)) for i, r in zip(sidx.tolist(), rslots.tolist())
    }
    want = set()
    for s in senders.tolist():
        r_sq = fleet.tx_range[s] ** 2
        for other in fleet.live_slots().tolist():
            if other == s:
                continue
            d_sq = (fleet.x[other] - fleet.x[s]) ** 2 + (
                fleet.y[other] - fleet.y[s]
            ) ** 2
            if d_sq <= r_sq:
                want.add((s, other))
    assert got == want
    assert candidates >= len(want)


def test_neighbor_pairs_empty_inputs():
    sim, channel, fleet, members = build_fleet([(0, 0)])
    sidx, rslots, candidates = fleet.neighbor_pairs(np.empty(0, dtype=np.intp))
    assert sidx.size == 0 and rslots.size == 0 and candidates == 0


# ----------------------------------------------------------------------
# the batched beacon tick
# ----------------------------------------------------------------------
def test_every_member_beacons_about_once_per_period():
    positions = [(float(i * 40), 0.0) for i in range(10)]
    sim, channel, fleet, members = build_fleet(positions)
    scheduler = make_scheduler(sim, fleet, channel)
    sim.run_until(15.0)
    counts = fleet.beacons_sent[fleet.live_slots()]
    # 15 s at a 3 s period with <= 0.75 s jitter: 4 or 5 beacons each.
    assert counts.min() >= 3
    assert counts.max() <= 6
    assert scheduler.beacons_sent == int(counts.sum())
    assert channel.stats.frames_sent == scheduler.beacons_sent


def test_first_beacons_are_staggered_within_one_period():
    positions = [(float(i * 40), 0.0) for i in range(30)]
    sim, channel, fleet, members = build_fleet(positions)
    make_scheduler(sim, fleet, channel)
    sim.run_until(3.5)
    counts = fleet.beacons_sent[fleet.live_slots()]
    # Everyone beacons within the first period (staggered start), nobody
    # twice before their second deadline could possibly arrive.
    assert counts.min() >= 1
    assert counts.max() <= 2


def test_fleet_receivers_get_entries_in_range_only():
    # 0 -- 100 -- 1000: the far member is out of the 150 m range.
    sim, channel, fleet, members = build_fleet([(0, 0), (100, 0), (1000, 0)])
    make_scheduler(sim, fleet, channel)
    sim.run_until(4.0)
    near_a, near_b, far = members
    a_from = {addr for addr, _pv in near_a.received}
    b_from = {addr for addr, _pv in near_b.received}
    assert a_from == {near_b.iface.address}
    assert b_from == {near_a.iface.address}
    assert far.received == []
    # PVs carry the sender's true position.
    for addr, pv in near_a.received:
        assert pv.position == Position(100.0, 0.0)


def test_nonfleet_interface_receives_real_frames():
    sim, channel, fleet, members = build_fleet([(0, 0), (100, 0)])
    sniffed = []
    mast = RadioInterface(
        lambda: Position(50.0, -10.0), 10.0, link_range=400.0, promiscuous=True
    )
    mast.attach(sniffed.append)
    channel.register(mast)
    make_scheduler(sim, fleet, channel)
    sim.run_until(4.0)
    assert sniffed
    frame = sniffed[0]
    assert isinstance(frame, Frame)
    assert frame.kind is FrameKind.BEACON
    assert frame.payload == b"beacon"
    assert frame.sender_addr in {m.iface.address for m in members}
    assert frame.tx_range == 150.0
    # Deliveries to the mast are counted like any other reception.
    assert channel.stats.frames_delivered >= len(sniffed)


def test_inactive_member_skips_cycles_without_burst():
    sim, channel, fleet, members = build_fleet([(0, 0), (100, 0)])
    make_scheduler(
        sim,
        fleet,
        channel,
        member_active=lambda m: m.active,
    )
    members[0].active = False
    sim.run_until(9.0)
    assert fleet.beacons_sent[members[0].slot] == 0
    members[0].active = True
    sim.run_until(15.0)
    # Reactivated: beacons resume at the normal cadence, no catch-up burst
    # for the cycles missed while down.
    assert 1 <= fleet.beacons_sent[members[0].slot] <= 3


def test_loss_rate_fades_fleet_deliveries():
    positions = [(float(i * 30), 0.0) for i in range(20)]
    sim_ideal, ch_ideal, fleet_ideal, members_ideal = build_fleet(positions)
    make_scheduler(sim_ideal, fleet_ideal, ch_ideal)
    sim_ideal.run_until(10.0)
    ideal = sum(len(m.received) for m in members_ideal)

    sim, channel, fleet, members = build_fleet(positions)
    channel.loss_rate = 0.5
    make_scheduler(sim, fleet, channel)
    sim.run_until(10.0)
    lossy = sum(len(m.received) for m in members)
    assert channel.stats.frames_faded > 0
    assert lossy < ideal
    assert channel.stats.frames_delivered == lossy


def test_make_beacon_returning_none_suppresses():
    sim, channel, fleet, members = build_fleet([(0, 0), (100, 0)])
    muted = members[0]

    def make(member, pv, now):
        if member is muted:
            return None
        return make_beacon(member, pv, now)

    make_scheduler(sim, fleet, channel, make_beacon=make)
    sim.run_until(10.0)
    assert fleet.beacons_sent[muted.slot] == 0
    assert fleet.beacons_sent[members[1].slot] >= 2
    assert muted.received  # still receives neighbors' beacons


def test_extra_delay_slows_cadence():
    sim, channel, fleet, members = build_fleet([(0, 0), (100, 0)])
    slow = members[0]
    make_scheduler(
        sim,
        fleet,
        channel,
        extra_delay=lambda m: 3.0 if m is slow else 0.0,
    )
    sim.run_until(20.0)
    assert fleet.beacons_sent[slow.slot] < fleet.beacons_sent[members[1].slot]


def test_beacon_tick_asserts_carrier_sense():
    sim, channel, fleet, members = build_fleet([(0, 0), (100, 0)])
    make_scheduler(sim, fleet, channel)
    busy_samples = []

    def probe():
        busy_samples.append(channel.medium_busy(Position(50.0, 0.0)))
        if sim.now < 10.0:
            # Immediately after each tick, within the in-flight window.
            sim.schedule(0.1, probe)

    # Probes run at priority 0 after the tick at the same timestamp plus
    # epsilon: schedule just after each tick boundary.
    sim.schedule(0.1000001, probe)
    sim.run_until(10.0)
    assert any(busy_samples)


def test_removed_member_stops_sending_and_receiving():
    sim, channel, fleet, members = build_fleet([(0, 0), (100, 0), (200, 0)])
    make_scheduler(sim, fleet, channel)
    sim.run_until(4.0)
    gone = members[1]
    fleet.remove(gone.slot)
    channel.unregister(gone.iface)
    sent_before = int(fleet.beacons_sent.sum())
    received_before = len(gone.received)
    sim.run_until(10.0)
    assert len(gone.received) == received_before
    # The survivors keep beaconing.
    assert int(fleet.beacons_sent.sum()) > sent_before
