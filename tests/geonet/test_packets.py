"""Tests for GeoNetworking packet formats."""

import pytest

from repro.geo.areas import CircularArea
from repro.geo.position import Position, PositionVector
from repro.geonet.packets import BeaconBody, GbcBody, GeoBroadcastPacket
from repro.security.ca import CertificateAuthority
from repro.security.signing import sign, verify


def make_body(**kwargs):
    defaults = dict(
        source_addr=1,
        sequence_number=7,
        source_pv=PositionVector(Position(0, 0), 10.0, 0.0, 0.0),
        area=CircularArea(Position(1000, 0), 50.0),
        payload="warning",
        lifetime=60.0,
        created_at=0.0,
    )
    defaults.update(kwargs)
    return GbcBody(**defaults)


def make_packet(body=None, rhl=10):
    creds = CertificateAuthority().enroll("src")
    body = body or make_body()
    return GeoBroadcastPacket(
        signed=sign(body, creds),
        rhl=rhl,
        sender_addr=body.source_addr,
        sender_position=body.source_pv.position,
    )


def test_packet_id_is_source_and_sequence():
    assert make_body().packet_id == (1, 7)


def test_lifetime_expiry():
    body = make_body(lifetime=60.0, created_at=10.0)
    assert not body.expired(70.0)
    assert body.expired(70.01)


def test_invalid_lifetime_rejected():
    with pytest.raises(ValueError):
        make_body(lifetime=0.0)


def test_negative_rhl_rejected():
    with pytest.raises(ValueError):
        make_packet(rhl=-1)


def test_next_hop_copy_shares_signed_body():
    packet = make_packet(rhl=10)
    forwarded = packet.next_hop_copy(
        rhl=9, sender_addr=42, sender_position=Position(100, 0)
    )
    assert forwarded.signed is packet.signed
    assert forwarded.rhl == 9
    assert forwarded.sender_addr == 42
    assert forwarded.packet_id == packet.packet_id


def test_rhl_rewrite_does_not_invalidate_signature():
    """The structural form of the paper's third CBF vulnerability:
    per-hop fields are outside the signature."""
    packet = make_packet(rhl=10)
    rewritten = packet.next_hop_copy(
        rhl=1,
        sender_addr=packet.sender_addr,
        sender_position=packet.sender_position,
    )
    assert verify(rewritten.signed)


def test_signed_body_is_tamper_evident():
    packet = make_packet()
    from repro.security.signing import SignedMessage

    altered_body = make_body(payload="tampered")
    forged = SignedMessage(
        body=altered_body,
        certificate=packet.signed.certificate,
        signature=packet.signed.signature,
    )
    assert not verify(forged)


def test_packet_properties_delegate_to_body():
    packet = make_packet()
    assert packet.body.payload == "warning"
    assert packet.area.contains(Position(1000, 0))
    assert not packet.expired(30.0)


def test_beacon_body_signable():
    creds = CertificateAuthority().enroll("v")
    beacon = sign(
        BeaconBody(
            source_addr=5,
            pv=PositionVector(Position(1, 2), 30.0, 0.0, 0.0),
        ),
        creds,
    )
    assert verify(beacon)
    assert beacon.body.source_addr == 5
