"""Integration-style tests for the router + node over a real channel."""

import pytest

from repro.geo.areas import CircularArea, RectangularArea
from repro.geo.position import Position
from repro.radio.technology import DSRC

FLOOD = RectangularArea(-100, 5000, -100, 100)


def collect_deliveries(node):
    got = []
    node.router.on_deliver.append(lambda n, p: got.append(p))
    return got


class TestBeaconing:
    def test_beacons_populate_location_tables(self, testbed):
        a = testbed.add_node(0)
        b = testbed.add_node(100)
        testbed.warm_up()
        assert b.address in a.router.loct
        assert a.address in b.router.loct

    def test_out_of_range_nodes_unknown(self, testbed):
        a = testbed.add_node(0)
        far = testbed.add_node(2000)
        testbed.warm_up()
        assert far.address not in a.router.loct

    def test_beacon_period_respected(self, testbed):
        a = testbed.add_node(0)
        testbed.add_node(100)
        testbed.sim.run_until(31.0)
        # ~10 beacons in 31 s at 3-3.75 s intervals
        assert 8 <= a.beacon_service.beacons_sent <= 11

    def test_own_beacon_not_in_own_table(self, testbed):
        a = testbed.add_node(0)
        testbed.add_node(50)
        testbed.warm_up()
        assert a.address not in a.router.loct

    def test_beacon_positions_are_authentic(self, testbed):
        a = testbed.add_node(0)
        b = testbed.add_node(321)
        testbed.warm_up()
        entry = a.router.loct.get(b.address, testbed.sim.now)
        assert entry.position == Position(321, 0)


class TestGreedyForwardingPath:
    def test_multi_hop_chain_delivery(self, testbed):
        nodes = testbed.chain(6, 400.0)
        got = collect_deliveries(nodes[-1])
        testbed.warm_up()
        area = CircularArea(Position(2000, 0), 30.0)
        nodes[0].originate(area, "hello")
        testbed.sim.run_until(testbed.sim.now + 2.0)
        assert len(got) == 1
        assert got[0].body.payload == "hello"

    def test_source_inside_area_floods_instead(self, testbed):
        a = testbed.add_node(0)
        b = testbed.add_node(100)
        got_a = collect_deliveries(a)
        got_b = collect_deliveries(b)
        testbed.warm_up()
        a.originate(RectangularArea(-50, 150, -50, 50), "local")
        testbed.sim.run_until(testbed.sim.now + 1.0)
        assert len(got_a) == 1  # source delivers to itself
        assert len(got_b) == 1

    def test_gf_holds_packet_until_neighbor_appears(self, testbed):
        a = testbed.add_node(0, beaconing=False)
        area = CircularArea(Position(800, 0), 30.0)
        # Nobody around: the packet is held and re-checked.
        a.originate(area, "patience")
        testbed.sim.run_until(2.0)
        assert a.router.stats.gf_rechecks >= 1
        # A relay and the destination appear later.
        testbed.add_node(400)
        dest = testbed.add_node(800)
        got = collect_deliveries(dest)
        testbed.sim.run_until(15.0)
        assert len(got) == 1

    def test_gf_drops_packet_after_lifetime(self, testbed):
        a = testbed.add_node(0, beaconing=False)
        a.originate(CircularArea(Position(1500, 0), 30.0), "doomed", lifetime=2.0)
        testbed.sim.run_until(10.0)
        assert a.router.stats.gf_lifetime_drops >= 1

    def test_unicast_loss_is_silent(self, testbed):
        """Vulnerability #3: no acknowledgement, no recovery."""
        a = testbed.add_node(0)
        testbed.add_node(400)
        dest = testbed.add_node(2000)  # too far for anyone
        got = collect_deliveries(dest)
        testbed.warm_up()
        # Poison a's LocT manually with dest's true position (as the attack
        # does): a will unicast straight to the unreachable destination.
        a.router.loct.update(
            dest.address, dest.position_vector(), testbed.sim.now
        )
        a.originate(CircularArea(Position(2000, 0), 30.0), "lost")
        testbed.sim.run_until(testbed.sim.now + 2.0)
        assert got == []
        assert testbed.channel.stats.unicast_lost >= 1
        assert a.router.stats.gf_forwards == 1  # a believes it forwarded

    def test_rhl_exhaustion_drops_forwarding(self, testbed):
        nodes = testbed.chain(6, 400.0)
        got = collect_deliveries(nodes[-1])
        testbed.warm_up()
        area = CircularArea(Position(2000, 0), 30.0)
        nodes[0].originate(area, "short-leash", rhl=2)
        testbed.sim.run_until(testbed.sim.now + 2.0)
        assert got == []

    def test_forwarded_packet_keeps_source_signature(self, testbed):
        nodes = testbed.chain(4, 400.0)
        got = collect_deliveries(nodes[-1])
        testbed.warm_up()
        nodes[0].originate(CircularArea(Position(1200, 0), 30.0), "signed")
        testbed.sim.run_until(testbed.sim.now + 2.0)
        assert got[0].signed.certificate.subject_id == nodes[0].credentials.certificate.subject_id


class TestCbfFloodPath:
    def test_flood_reaches_all_nodes(self, testbed):
        nodes = testbed.chain(10, 400.0)
        counters = [collect_deliveries(n) for n in nodes]
        testbed.warm_up()
        nodes[0].originate(FLOOD, "flood")
        testbed.sim.run_until(testbed.sim.now + 2.0)
        assert all(len(c) == 1 for c in counters)

    def test_each_node_delivers_once(self, testbed):
        nodes = testbed.chain(5, 300.0)
        counters = [collect_deliveries(n) for n in nodes]
        testbed.warm_up()
        nodes[2].originate(FLOOD, "flood")
        testbed.sim.run_until(testbed.sim.now + 2.0)
        assert all(len(c) == 1 for c in counters)

    def test_contention_suppresses_redundant_rebroadcasts(self, testbed):
        # A dense cluster: everyone hears everyone; only one node should
        # re-broadcast after the source.
        nodes = [testbed.add_node(x) for x in (0, 30, 60, 90, 120)]
        testbed.warm_up()
        nodes[0].originate(FLOOD, "dense")
        testbed.sim.run_until(testbed.sim.now + 2.0)
        rebroadcasts = sum(n.router.cbf.stats.rebroadcasts for n in nodes)
        # source origination + exactly one contention winner
        assert rebroadcasts == 2

    def test_out_of_area_nodes_ignore_flood(self, testbed):
        inside = testbed.add_node(0)
        outside = testbed.add_node(300)
        got = collect_deliveries(outside)
        testbed.warm_up()
        inside.originate(RectangularArea(-50, 100, -50, 50), "local")
        testbed.sim.run_until(testbed.sim.now + 1.0)
        assert got == []
        assert outside.router.stats.out_of_area_broadcasts >= 1


class TestNodeLifecycle:
    def test_shutdown_stops_beaconing_and_reception(self, testbed):
        a = testbed.add_node(0)
        testbed.add_node(100)
        testbed.warm_up()
        sent_before = a.beacon_service.beacons_sent
        a.shutdown()
        testbed.sim.run_until(testbed.sim.now + 10.0)
        assert a.beacon_service.beacons_sent == sent_before
        assert a.is_shut_down

    def test_shutdown_idempotent(self, testbed):
        a = testbed.add_node(0)
        a.shutdown()
        a.shutdown()

    def test_beaconing_requires_rng(self, testbed):
        from repro.geonet.node import GeoNode, StaticMobility

        with pytest.raises(ValueError):
            GeoNode(
                sim=testbed.sim,
                channel=testbed.channel,
                config=testbed.config,
                credentials=testbed.ca.enroll("x"),
                mobility=StaticMobility(Position(0, 0)),
                tx_range=DSRC.vehicle_range_m,
                rng=None,
                beaconing=True,
            )


class TestAuthentication:
    def test_unauthenticated_beacon_rejected(self, testbed):
        from repro.geo.position import PositionVector
        from repro.geonet.packets import BeaconBody
        from repro.radio.channel import RadioInterface
        from repro.radio.frames import FrameKind
        from repro.security.certificates import Certificate, Credentials
        from repro.security.signing import sign

        victim = testbed.add_node(0)
        # An attacker with made-up credentials broadcasts a forged beacon.
        bogus = Credentials(
            certificate=Certificate("m", "fake-pub", "USDOT-CA", "fake-sig"),
            private_token="fake-priv",
        )
        forged = sign(
            BeaconBody(
                source_addr=424242,
                pv=PositionVector(Position(50, 0), 0.0, 0.0, testbed.sim.now),
            ),
            bogus,
        )
        iface = RadioInterface(lambda: Position(10, 0), tx_range=486.0)
        testbed.channel.register(iface)
        iface.send(FrameKind.BEACON, forged)
        testbed.sim.run_until(testbed.sim.now + 1.0)
        assert 424242 not in victim.router.loct
        assert victim.router.stats.beacons_rejected_auth == 1

    def test_stale_beacon_rejected(self, testbed):
        from repro.geo.position import PositionVector
        from repro.geonet.packets import BeaconBody
        from repro.radio.channel import RadioInterface
        from repro.radio.frames import FrameKind
        from repro.security.signing import sign

        victim = testbed.add_node(0)
        old_creds = testbed.ca.enroll("old")
        stale = sign(
            BeaconBody(
                source_addr=99,
                pv=PositionVector(Position(50, 0), 0.0, 0.0, timestamp=0.0),
            ),
            old_creds,
        )
        iface = RadioInterface(lambda: Position(10, 0), tx_range=486.0)
        testbed.channel.register(iface)
        testbed.sim.run_until(30.0)  # let the beacon age well past freshness
        iface.send(FrameKind.BEACON, stale)
        testbed.sim.run_until(31.0)
        assert 99 not in victim.router.loct
        assert victim.router.stats.beacons_rejected_stale == 1


class TestGfRecheckBounds:
    def test_pending_recheck_set_prunes_fired_handles(self, testbed):
        """Same contract as the GUC recheck set: handles of fired rechecks
        must be pruned by due time, not retained for the node's lifetime."""
        a = testbed.add_node(0.0)
        testbed.warm_up()
        a.originate(
            CircularArea(Position(3000.0, 0.0), 100.0), "stuck", lifetime=60.0
        )
        testbed.sim.run_until(testbed.sim.now + 50.0)
        assert a.router.stats.gf_rechecks >= 90
        assert len(a.router._pending_rechecks) <= 65
