"""Tests for the Greedy Forwarding algorithm."""


from repro.geo.areas import CircularArea
from repro.geo.position import Position, PositionVector
from repro.geonet.config import GeoNetConfig
from repro.geonet.gf import GreedyForwarder
from repro.geonet.loct import LocationTable

DEST = CircularArea(Position(1000.0, 0.0), 20.0)


def pv(x, t=0.0):
    return PositionVector(Position(x, 0.0), speed=0.0, heading=0.0, timestamp=t)


def make_gf(plausibility=False, threshold=486.0):
    config = GeoNetConfig(
        plausibility_check=plausibility, plausibility_threshold=threshold
    )
    loct = LocationTable(ttl=config.loct_ttl)
    return GreedyForwarder(config, loct), loct


def test_picks_neighbor_closest_to_destination():
    gf, loct = make_gf()
    loct.update(1, pv(100), now=0.0)
    loct.update(2, pv(400), now=0.0)
    loct.update(3, pv(250), now=0.0)
    selection = gf.select_next_hop(Position(0, 0), DEST, now=0.0)
    assert selection.next_hop.addr == 2


def test_requires_strict_progress():
    gf, loct = make_gf()
    loct.update(1, pv(0), now=0.0)  # same distance as forwarder
    selection = gf.select_next_hop(Position(0, 0), DEST, now=0.0)
    assert selection.next_hop is None
    assert selection.reason == "no-progress-candidate"


def test_backward_candidates_rejected():
    gf, loct = make_gf()
    loct.update(1, pv(-200), now=0.0)
    selection = gf.select_next_hop(Position(0, 0), DEST, now=0.0)
    assert selection.next_hop is None


def test_empty_table_returns_none():
    gf, _ = make_gf()
    selection = gf.select_next_hop(Position(0, 0), DEST, now=0.0)
    assert selection.next_hop is None
    assert gf.stats.no_progress == 1


def test_expired_entries_ignored():
    gf, loct = make_gf()
    loct.update(1, pv(500), now=0.0)
    selection = gf.select_next_hop(Position(0, 0), DEST, now=25.0)
    assert selection.next_hop is None


def test_excluded_addresses_skipped():
    gf, loct = make_gf()
    loct.update(1, pv(500), now=0.0)
    loct.update(2, pv(300), now=0.0)
    selection = gf.select_next_hop(Position(0, 0), DEST, now=0.0, exclude={1})
    assert selection.next_hop.addr == 2


def test_no_plausibility_check_by_default():
    """Vulnerability #2: a far-away advertised position is accepted."""
    gf, loct = make_gf()
    loct.update(1, pv(900), now=0.0)  # 900 m away, far out of radio range
    selection = gf.select_next_hop(Position(0, 0), DEST, now=0.0)
    assert selection.next_hop.addr == 1


def test_plausibility_check_skips_implausible_candidate():
    gf, loct = make_gf(plausibility=True, threshold=486.0)
    loct.update(1, pv(900), now=0.0)  # implausible
    loct.update(2, pv(400), now=0.0)  # plausible
    selection = gf.select_next_hop(Position(0, 0), DEST, now=0.0)
    assert selection.next_hop.addr == 2
    assert selection.rejected_by_plausibility == 1


def test_plausibility_check_may_leave_no_candidate():
    gf, loct = make_gf(plausibility=True, threshold=486.0)
    loct.update(1, pv(900), now=0.0)
    selection = gf.select_next_hop(Position(0, 0), DEST, now=0.0)
    assert selection.next_hop is None
    assert gf.stats.plausibility_rejections == 1


def test_plausibility_boundary_is_inclusive():
    gf, loct = make_gf(plausibility=True, threshold=486.0)
    loct.update(1, pv(486.0), now=0.0)
    selection = gf.select_next_hop(Position(0, 0), DEST, now=0.0)
    assert selection.next_hop.addr == 1


def test_candidates_past_destination_ranked_by_distance_to_center():
    gf, loct = make_gf()
    loct.update(1, pv(1300), now=0.0)  # 300 past the centre
    loct.update(2, pv(900), now=0.0)  # 100 short of the centre
    selection = gf.select_next_hop(Position(0, 0), DEST, now=0.0)
    assert selection.next_hop.addr == 2


def test_stats_count_selections():
    gf, loct = make_gf()
    loct.update(1, pv(500), now=0.0)
    gf.select_next_hop(Position(0, 0), DEST, now=0.0)
    gf.select_next_hop(Position(0, 0), DEST, now=0.0)
    assert gf.stats.selections == 2
