"""Tests for the S-FoT+ sectorial CBF variant."""

import pytest

from repro.geo.areas import CircularArea, RectangularArea
from repro.geo.position import Position, PositionVector
from repro.geonet.cbf import CbfForwarder, SfotCbfForwarder
from repro.geonet.config import GeoNetConfig
from repro.geonet.packets import GbcBody, GeoBroadcastPacket
from repro.security.ca import CertificateAuthority
from repro.security.signing import sign
from repro.sim.engine import Simulator

CONFIG = GeoNetConfig(
    to_min=0.001,
    to_max=0.100,
    dist_max=1283.0,
    cbf_variant="sfot+",
    sfot_sector_deg=120.0,
    sfot_dup_threshold=2,
)
_CA = CertificateAuthority()
_CREDS = _CA.enroll("sfot-test-source")

# Destination area centred far east of the sender at the origin: the
# contention sector opens eastward.
AREA = CircularArea(Position(1000.0, 0.0), 50.0)


def make_packet(seq=1, rhl=10, sender=Position(0.0, 0.0), area=AREA):
    body = GbcBody(
        source_addr=1,
        sequence_number=seq,
        source_pv=PositionVector(Position(0, 0), 0.0, 0.0, 0.0),
        area=area,
        payload="flood",
        lifetime=60.0,
        created_at=0.0,
    )
    return GeoBroadcastPacket(
        signed=sign(body, _CREDS), rhl=rhl, sender_addr=1, sender_position=sender
    )


class Harness:
    def __init__(self, x=300.0, y=0.0, config=CONFIG, cls=SfotCbfForwarder):
        self.sim = Simulator()
        self.delivered = []
        self.broadcasts = []
        self.cbf = cls(
            sim=self.sim,
            config=config,
            get_position=lambda: Position(x, y),
            deliver=self.delivered.append,
            broadcast=lambda p, rhl: self.broadcasts.append((p, rhl)),
        )


class TestSector:
    def test_receiver_toward_area_contends(self):
        h = Harness(x=300.0, y=0.0)  # dead ahead of sender->area
        h.cbf.handle_broadcast(make_packet())
        assert len(h.delivered) == 1
        assert h.cbf.stats.buffered == 1
        assert h.cbf.stats.sector_skips == 0

    def test_receiver_behind_sender_delivers_but_never_contends(self):
        h = Harness(x=-300.0, y=0.0)  # opposite the area direction
        h.cbf.handle_broadcast(make_packet())
        assert len(h.delivered) == 1
        assert h.cbf.stats.buffered == 0
        assert h.cbf.stats.sector_skips == 1
        h.sim.run_until(1.0)
        assert h.broadcasts == []

    def test_sector_edge_uses_configured_angle(self):
        # 120 deg sector: half-angle 60 deg.  At 59 deg off-axis: inside.
        inside = Harness(x=100.0, y=166.0)  # atan(166/100) ~ 58.9 deg
        inside.cbf.handle_broadcast(make_packet())
        assert inside.cbf.stats.buffered == 1
        outside = Harness(x=100.0, y=180.0)  # ~60.9 deg
        outside.cbf.handle_broadcast(make_packet())
        assert outside.cbf.stats.buffered == 0
        assert outside.cbf.stats.sector_skips == 1

    def test_sender_at_area_center_means_everyone_contends(self):
        area = RectangularArea(-100.0, 100.0, -100.0, 100.0)
        h = Harness(x=-50.0, y=0.0)
        h.cbf.handle_broadcast(make_packet(area=area))
        assert h.cbf.stats.buffered == 1

    def test_skipped_receiver_ignores_late_duplicates(self):
        h = Harness(x=-300.0, y=0.0)
        h.cbf.handle_broadcast(make_packet())
        h.cbf.handle_broadcast(make_packet())
        assert h.cbf.stats.late_duplicates_ignored == 1


class TestDuplicateThreshold:
    def test_single_duplicate_does_not_cancel(self):
        h = Harness(x=300.0, y=0.0)
        h.cbf.handle_broadcast(make_packet(rhl=10))
        h.cbf.handle_broadcast(make_packet(rhl=9, sender=Position(500.0, 0.0)))
        assert h.cbf.stats.suppressed_by_duplicate == 0
        assert h.cbf.stats.dup_below_threshold == 1
        h.sim.run_until(1.0)
        # The buffered copy survived the lone duplicate and was forwarded.
        assert len(h.broadcasts) == 1

    def test_threshold_duplicates_cancel(self):
        h = Harness(x=300.0, y=0.0)
        h.cbf.handle_broadcast(make_packet(rhl=10))
        h.cbf.handle_broadcast(make_packet(rhl=9, sender=Position(500.0, 0.0)))
        h.cbf.handle_broadcast(make_packet(rhl=9, sender=Position(200.0, 0.0)))
        assert h.cbf.stats.suppressed_by_duplicate == 1
        h.sim.run_until(1.0)
        assert h.broadcasts == []

    def test_threshold_one_matches_stock_cbf(self):
        config = GeoNetConfig(
            to_min=0.001, to_max=0.100, dist_max=1283.0,
            cbf_variant="sfot+", sfot_dup_threshold=1,
        )
        h = Harness(x=300.0, y=0.0, config=config)
        h.cbf.handle_broadcast(make_packet(rhl=10))
        h.cbf.handle_broadcast(make_packet(rhl=9, sender=Position(500.0, 0.0)))
        assert h.cbf.stats.suppressed_by_duplicate == 1

    def test_implausible_rhl_duplicates_do_not_count(self):
        config = GeoNetConfig(
            to_min=0.001, to_max=0.100, dist_max=1283.0,
            cbf_variant="sfot+", sfot_dup_threshold=2, rhl_check=True,
        )
        h = Harness(x=300.0, y=0.0, config=config)
        h.cbf.handle_broadcast(make_packet(rhl=10))
        for _ in range(3):
            h.cbf.handle_broadcast(
                make_packet(rhl=1, sender=Position(500.0, 0.0))
            )
        assert h.cbf.stats.rhl_check_rejections == 3
        assert h.cbf.stats.suppressed_by_duplicate == 0
        assert h.cbf.stats.dup_below_threshold == 0


class TestVariantSelection:
    def test_stock_cbf_cancels_on_first_duplicate(self):
        h = Harness(x=300.0, y=0.0, cls=CbfForwarder)
        h.cbf.handle_broadcast(make_packet(rhl=10))
        h.cbf.handle_broadcast(make_packet(rhl=9, sender=Position(500.0, 0.0)))
        assert h.cbf.stats.suppressed_by_duplicate == 1

    def test_sector_config_validated(self):
        with pytest.raises(Exception):
            GeoNetConfig(sfot_sector_deg=0.0)
        with pytest.raises(Exception):
            GeoNetConfig(sfot_dup_threshold=0)
