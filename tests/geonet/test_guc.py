"""Tests for GeoUnicast and the Location Service."""


from repro.geonet.guc import LS_MAX_ATTEMPTS


def collect_unicasts(node):
    got = []
    node.router.unicast.on_deliver.append(lambda n, p: got.append(p))
    return got


class TestDirectGeoUnicast:
    def test_one_hop_delivery(self, testbed):
        a = testbed.add_node(0.0)
        b = testbed.add_node(300.0)
        got = collect_unicasts(b)
        testbed.warm_up()
        a.send_geo_unicast(b.address, "hello")
        testbed.sim.run_until(testbed.sim.now + 1.0)
        assert len(got) == 1
        assert got[0].body.payload == "hello"
        assert got[0].body.source_addr == a.address

    def test_multi_hop_delivery(self, testbed):
        nodes = testbed.chain(6, 400.0)
        got = collect_unicasts(nodes[-1])
        testbed.warm_up()
        # The source does not know the far node; LS resolves it first.
        nodes[0].send_geo_unicast(nodes[-1].address, "far away")
        testbed.sim.run_until(testbed.sim.now + 5.0)
        assert len(got) == 1

    def test_delivery_is_deduplicated(self, testbed):
        a = testbed.add_node(0.0)
        b = testbed.add_node(300.0)
        got = collect_unicasts(b)
        testbed.warm_up()
        a.send_geo_unicast(b.address, "one")
        a.send_geo_unicast(b.address, "two")
        testbed.sim.run_until(testbed.sim.now + 1.0)
        assert len(got) == 2  # distinct packets, one delivery each

    def test_unknown_unreachable_destination_gives_up(self, testbed):
        a = testbed.add_node(0.0)
        testbed.warm_up()
        a.send_geo_unicast(999999, "void")
        testbed.sim.run_until(
            testbed.sim.now + (LS_MAX_ATTEMPTS + 1) * 1.5
        )
        stats = a.router.unicast.stats
        assert stats.ls_failures == 1
        assert stats.guc_drops >= 1

    def test_guc_stats_track_forwards(self, testbed):
        nodes = testbed.chain(4, 400.0)
        got = collect_unicasts(nodes[-1])
        testbed.warm_up()
        nodes[0].send_geo_unicast(nodes[-1].address, "counted")
        testbed.sim.run_until(testbed.sim.now + 5.0)
        assert len(got) == 1
        total_forwards = sum(
            n.router.unicast.stats.guc_forwards for n in nodes
        )
        assert total_forwards >= 2  # at least source + one relay


class TestLocationService:
    def test_ls_resolves_out_of_range_target(self, testbed):
        nodes = testbed.chain(5, 400.0)
        requester, target = nodes[0], nodes[-1]
        testbed.warm_up()
        assert requester.router.loct.get(target.address, testbed.sim.now) is None
        requester.send_geo_unicast(target.address, "resolve me")
        testbed.sim.run_until(testbed.sim.now + 5.0)
        # The LS reply populated the requester's LocT.
        assert (
            requester.router.loct.get(target.address, testbed.sim.now)
            is not None
        )
        assert requester.router.unicast.stats.ls_resolutions == 1

    def test_ls_request_flood_is_duplicate_filtered(self, testbed):
        nodes = testbed.chain(5, 300.0)
        testbed.warm_up()
        nodes[0].send_geo_unicast(nodes[-1].address, "x")
        testbed.sim.run_until(testbed.sim.now + 5.0)
        for node in nodes[1:-1]:
            assert node.router.unicast.stats.ls_requests_forwarded <= 2

    def test_target_replies_once_per_request(self, testbed):
        nodes = testbed.chain(4, 300.0)
        testbed.warm_up()
        nodes[0].send_geo_unicast(nodes[-1].address, "x")
        testbed.sim.run_until(testbed.sim.now + 5.0)
        assert nodes[-1].router.unicast.stats.ls_replies_sent == 1

    def test_multiple_buffered_packets_flush_together(self, testbed):
        nodes = testbed.chain(4, 400.0)
        got = collect_unicasts(nodes[-1])
        testbed.warm_up()
        for i in range(3):
            nodes[0].send_geo_unicast(nodes[-1].address, f"msg-{i}")
        testbed.sim.run_until(testbed.sim.now + 5.0)
        assert sorted(p.body.payload for p in got) == ["msg-0", "msg-1", "msg-2"]
        # One resolution served all three packets.
        assert nodes[0].router.unicast.stats.ls_requests_sent <= 2


class TestGucSecurity:
    def test_guc_rhl_and_dest_hint_are_unsigned(self, testbed):
        """Like GBC, per-hop fields of GUC stay outside the signature."""
        from repro.geo.position import Position
        from repro.security.signing import verify

        a = testbed.add_node(0.0)
        b = testbed.add_node(300.0)
        captured = []
        b.router.unicast.on_deliver.append(lambda n, p: captured.append(p))
        testbed.warm_up()
        a.send_geo_unicast(b.address, "sign me")
        testbed.sim.run_until(testbed.sim.now + 1.0)
        packet = captured[0]
        mangled = packet.next_hop_copy(
            rhl=1,
            sender_addr=packet.sender_addr,
            sender_position=packet.sender_position,
            dest_position=Position(0, 0),
        )
        assert verify(mangled.signed)

    def test_forged_guc_rejected(self, testbed):
        from repro.geo.position import Position, PositionVector
        from repro.geonet.unicast import GeoUnicastPacket, GucBody
        from repro.radio.frames import FrameKind
        from repro.security.certificates import Certificate, Credentials
        from repro.security.signing import sign

        victim = testbed.add_node(0.0)
        got = collect_unicasts(victim)
        bogus = Credentials(
            certificate=Certificate("m", "no-pub", "USDOT-CA", "no-sig"),
            private_token="no-priv",
        )
        body = GucBody(
            source_addr=777,
            sequence_number=1,
            source_pv=PositionVector(Position(100, 0), 0.0, 0.0, 0.0),
            dest_addr=victim.address,
            payload="forged",
            lifetime=60.0,
            created_at=0.0,
        )
        packet = GeoUnicastPacket(
            signed=sign(body, bogus),
            rhl=5,
            sender_addr=777,
            sender_position=Position(100, 0),
            dest_position=victim.position(),
        )
        from repro.radio.channel import RadioInterface

        iface = RadioInterface(lambda: Position(100, 0), 486.0)
        testbed.channel.register(iface)
        iface.send(FrameKind.GEO_UNICAST, packet, dest_addr=victim.address)
        testbed.sim.run_until(testbed.sim.now + 1.0)
        assert got == []
        assert victim.router.unicast.stats.rejected_auth == 1


class TestGucUnderAttack:
    def test_inter_area_attack_intercepts_guc(self, testbed):
        """The beacon-replay attack poisons GUC relaying exactly like GBC."""
        from repro.core.attacks import InterAreaInterceptor
        from repro.geo.position import Position

        v1 = testbed.add_node(0.0)
        testbed.add_node(400.0)
        testbed.add_node(880.0)
        dest = testbed.add_node(1300.0)
        got = collect_unicasts(dest)
        InterAreaInterceptor(
            sim=testbed.sim,
            channel=testbed.channel,
            streams=testbed.streams,
            position=Position(450.0, -10.0),
            attack_range=600.0,
        )
        testbed.warm_up()
        # v1 knows dest via the attacker's replays (poisoned) and unicasts
        # toward it; the GF relay chain picks the unreachable v3.
        v1.send_geo_unicast(dest.address, "intercept me")
        testbed.sim.run_until(testbed.sim.now + 3.0)
        assert got == []
        assert testbed.channel.stats.unicast_lost >= 1


class TestGucBoundedState:
    """The GUC dedup tables and the recheck set must not grow without
    bound over a run (same contract as ``CbfForwarder._done``)."""

    def _stuck_packet(self, node, *, lifetime=60.0):
        from repro.geo.position import Position
        from repro.geonet.unicast import GeoUnicastPacket, GucBody
        from repro.security.signing import sign

        body = GucBody(
            source_addr=node.address,
            sequence_number=1,
            source_pv=node.position_vector(),
            dest_addr=424242,
            payload="stuck",
            lifetime=lifetime,
            created_at=node.sim.now,
        )
        return GeoUnicastPacket(
            signed=sign(body, node.credentials),
            rhl=10,
            sender_addr=node.address,
            sender_position=node.position(),
            dest_position=Position(3000.0, 0.0),
        )

    def test_sweep_drops_expired_dedup_entries(self, testbed):
        nodes = testbed.chain(4, 400.0)
        got = collect_unicasts(nodes[-1])
        testbed.warm_up()
        nodes[0].send_geo_unicast(nodes[-1].address, "x", lifetime=2.0)
        testbed.sim.run_until(testbed.sim.now + 5.0)
        assert len(got) == 1
        target = nodes[-1].router.unicast
        assert target._delivered  # delivery dedup entry recorded
        assert any(n.router.unicast._ls_seen for n in nodes)
        for node in nodes:
            svc = node.router.unicast
            svc._next_sweep = 0.0
            svc._sweep(testbed.sim.now + 1000.0)
            assert svc._delivered == {}
            assert svc._ls_seen == {}

    def test_dedup_entries_expire_with_their_packets(self, testbed):
        """Entries carry a drop-after keyed on the packet's own lifetime
        (LS ids on the retransmit window), so the sweep can always reclaim
        them once the packet cannot recur."""
        nodes = testbed.chain(4, 400.0)
        testbed.warm_up()
        nodes[0].send_geo_unicast(nodes[-1].address, "x", lifetime=2.0)
        testbed.sim.run_until(testbed.sim.now + 3.0)
        horizon = testbed.sim.now + 10.0
        for node in nodes:
            svc = node.router.unicast
            for drop_after in list(svc._ls_seen.values()) + list(
                svc._delivered.values()
            ):
                assert drop_after < horizon

    def test_recheck_set_prunes_fired_handles(self, testbed):
        """A GF recheck loop fires hundreds of events over a packet's
        lifetime; fired handles never flip ``cancelled``, so the set must
        prune by due time or it retains every recheck ever scheduled."""
        a = testbed.add_node(0.0)
        svc = a.router.unicast
        testbed.warm_up()
        svc._route(self._stuck_packet(a))
        testbed.sim.run_until(testbed.sim.now + 50.0)
        assert svc.stats.guc_rechecks >= 90
        assert len(svc._rechecks) <= 65
