"""The shared store-backend contract, run against every backend.

Every test in this module executes once per backend (JSON files, SQLite
database) through the ``backend`` fixture: the two must behave
identically through the :class:`~repro.experiments.store.ResultStoreBase`
API, down to producing byte-identical record dicts, because campaigns
switch between them with a flag.  Backend-specific tampering (corrupting
a record, forging a schema version) goes through the harness so each
test states *what* is broken, not *how* that backend breaks.
"""

import json
import multiprocessing

import pytest

from repro.experiments.sqlite_store import SqliteResultStore
from repro.experiments.store import (
    ResultStore,
    RunKey,
    SCHEMA_VERSION,
    SQLITE_DB_NAME,
    StoreError,
    open_store,
)
from tests.experiments.test_store import key, sample_result


class BackendHarness:
    """One backend under contract test, plus its tampering hooks."""

    def __init__(self, name, root):
        self.name = name
        self.root = root

    def open(self):
        return open_store(self.root, backend=self.name)

    def corrupt(self, store, k):
        """Make ``k``'s stored record unparseable, out of band."""
        raise NotImplementedError

    def set_schema(self, store, k, version):
        """Forge ``k``'s record schema version, out of band."""
        raise NotImplementedError

    def raw_present(self, store, k):
        """Whether ``k`` still has an (uninterpreted) record in place."""
        raise NotImplementedError


class JsonHarness(BackendHarness):
    def corrupt(self, store, k):
        store.path_for(k).write_text("{truncated")

    def set_schema(self, store, k, version):
        path = store.path_for(k)
        record = json.loads(path.read_text())
        record["schema"] = version
        path.write_text(json.dumps(record))

    def raw_present(self, store, k):
        return store.path_for(k).exists()


class SqliteHarness(BackendHarness):
    @staticmethod
    def _where(k):
        return (
            "target=? AND config_hash=? AND seed=? AND attacked=?",
            (k.target, k.config_hash, k.seed, int(k.attacked)),
        )

    def corrupt(self, store, k):
        where, params = self._where(k)
        store._conn().execute(
            f"UPDATE records SET payload='{{truncated' WHERE {where}", params
        )

    def set_schema(self, store, k, version):
        where, params = self._where(k)
        row = store._conn().execute(
            f"SELECT payload FROM records WHERE {where}", params
        ).fetchone()
        record = json.loads(row[0])
        record["schema"] = version
        store._conn().execute(
            f"UPDATE records SET payload=?, schema=? WHERE {where}",
            (json.dumps(record), version) + params,
        )

    def raw_present(self, store, k):
        where, params = self._where(k)
        return (
            store._conn()
            .execute(f"SELECT 1 FROM records WHERE {where}", params)
            .fetchone()
            is not None
        )


@pytest.fixture(params=["json", "sqlite"])
def backend(request, tmp_path):
    harness_cls = {"json": JsonHarness, "sqlite": SqliteHarness}[request.param]
    return harness_cls(request.param, tmp_path / request.param)


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------
def test_run_round_trip(backend):
    store = backend.open()
    result = sample_result()
    store.put_run(key(), result)
    assert store.get_run(key()) == result
    assert store.has(key())
    assert store.get_run(key(seed=99)) is None


def test_text_round_trip(backend):
    store = backend.open()
    k = key(target="table1", attacked=False)
    store.put_text(k, "rendered artefact", params={"seed": 1})
    assert store.get_text(k) == "rendered artefact"
    assert store.has(k)
    assert store.get_run(k) is None  # wrong kind


def test_failure_round_trip_does_not_count_as_done(backend):
    store = backend.open()
    store.put_failure(key(), "worker crashed")
    assert store.get_failure(key()) == "worker crashed"
    assert not store.has(key())  # failures are retried on resume
    assert store.get_run(key()) is None


def test_success_overwrites_failure(backend):
    store = backend.open()
    store.put_failure(key(), "boom")
    store.put_run(key(), sample_result())
    assert store.has(key())
    assert store.get_failure(key()) is None


def test_records_persist_across_reopen(backend):
    store = backend.open()
    store.put_run(key(), sample_result())
    reopened = backend.open()
    assert reopened.get_run(key()) == sample_result()
    assert reopened.count() == 1


def test_iter_keys_and_count(backend):
    store = backend.open()
    keys = [
        key(target="a", seed=1, attacked=False),
        key(target="a", seed=1, attacked=True),
        key(target="b", seed=2, attacked=False),
    ]
    for k in keys:
        store.put_run(k, sample_result(seed=k.seed, attacked=k.attacked))
    assert set(store.iter_keys()) == set(keys)
    assert store.count() == 3


def test_resume_skip_via_has(backend):
    """``has`` drives resume: stored keys skip, failed/absent ones run."""
    store = backend.open()
    done, failed, missing = key(seed=1), key(seed=2), key(seed=3)
    store.put_run(done, sample_result(seed=1))
    store.put_failure(failed, "boom")
    to_run = [k for k in (done, failed, missing) if not store.has(k)]
    assert to_run == [failed, missing]


# ----------------------------------------------------------------------
# schema versioning
# ----------------------------------------------------------------------
def test_schema_mismatch_reads_absent_but_stays_in_place(backend):
    store = backend.open()
    store.put_run(key(), sample_result())
    backend.set_schema(store, key(), SCHEMA_VERSION + 998)
    assert store.get_record(key()) is None
    assert store.get_run(key()) is None
    assert not store.has(key())
    # version skew is evidence, not corruption: no quarantine, row stays
    assert store.quarantine_count() == 0
    assert backend.raw_present(store, key())


# ----------------------------------------------------------------------
# quarantine of unparseable records
# ----------------------------------------------------------------------
def test_corrupt_record_is_quarantined(backend):
    store = backend.open()
    store.put_run(key(), sample_result())
    backend.corrupt(store, key())
    assert store.get_record(key()) is None
    assert not store.has(key())
    assert store.quarantine_count() == 1
    # the key reads as absent everywhere, so resume re-runs it
    assert list(store.iter_keys()) == []


def test_quarantined_key_is_rewritable(backend):
    store = backend.open()
    store.put_run(key(), sample_result())
    backend.corrupt(store, key())
    assert not store.has(key())
    store.put_run(key(), sample_result())  # the re-run lands normally
    assert store.has(key())
    assert store.get_run(key()) == sample_result()
    assert store.quarantine_count() == 1  # evidence kept


# ----------------------------------------------------------------------
# batched appends
# ----------------------------------------------------------------------
def test_batch_writes_are_visible_after_the_block(backend):
    store = backend.open()
    with store.batch():
        store.put_run(key(seed=1), sample_result(seed=1))
        store.put_run(key(seed=2), sample_result(seed=2))
    assert store.count() == 2
    assert store.get_run(key(seed=1)) == sample_result(seed=1)


# ----------------------------------------------------------------------
# concurrent writers
# ----------------------------------------------------------------------
def _writer_process(backend_name, root, worker, per_worker):
    store = open_store(root, backend=backend_name)
    for n in range(per_worker):
        k = RunKey(
            target=f"w{worker}", config_hash="ab12", seed=n, attacked=False
        )
        store.put_run(k, sample_result(seed=n, attacked=False))
    # every worker also hammers one shared key with the identical record
    shared = RunKey(target="shared", config_hash="ab12", seed=0, attacked=False)
    for _ in range(per_worker):
        store.put_run(shared, sample_result(seed=0, attacked=False))


def test_concurrent_writers_do_not_corrupt_records(backend):
    workers, per_worker = 4, 20
    ctx = multiprocessing.get_context("fork")
    procs = [
        ctx.Process(
            target=_writer_process,
            args=(backend.name, backend.root, w, per_worker),
        )
        for w in range(workers)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    store = backend.open()
    assert store.count() == workers * per_worker + 1
    assert store.quarantine_count() == 0
    for w in range(workers):
        for n in range(per_worker):
            k = RunKey(
                target=f"w{w}", config_hash="ab12", seed=n, attacked=False
            )
            assert store.get_run(k) == sample_result(seed=n, attacked=False)
    shared = RunKey(target="shared", config_hash="ab12", seed=0, attacked=False)
    assert store.get_run(shared) == sample_result(seed=0, attacked=False)


# ----------------------------------------------------------------------
# cross-backend parity
# ----------------------------------------------------------------------
def test_backends_produce_byte_identical_records(tmp_path):
    json_store = open_store(tmp_path / "json", backend="json")
    sqlite_store = open_store(tmp_path / "sqlite", backend="sqlite")
    result = sample_result()
    for store in (json_store, sqlite_store):
        store.put_run(key(), result, config={"duration": 6.0})
        store.put_text(key(target="table1", attacked=False), "artefact")
        store.put_failure(key(seed=9), "boom")
    for k in (key(), key(target="table1", attacked=False), key(seed=9)):
        json_record = json_store.get_record(k)
        sqlite_record = sqlite_store.get_record(k)
        assert json.dumps(json_record, sort_keys=True) == json.dumps(
            sqlite_record, sort_keys=True
        )
    assert list(json_store.iter_keys()) == list(sqlite_store.iter_keys())


# ----------------------------------------------------------------------
# open_store routing
# ----------------------------------------------------------------------
def test_open_store_routes_backends(tmp_path):
    assert isinstance(open_store(tmp_path, backend="json"), ResultStore)
    store = open_store(tmp_path, backend="sqlite")
    assert isinstance(store, SqliteResultStore)
    # a directory root gets the default database name under it
    assert store.path == tmp_path / SQLITE_DB_NAME
    # an explicit database filename is honoured as-is
    explicit = open_store(tmp_path / "mine.sqlite", backend="sqlite")
    assert explicit.path == tmp_path / "mine.sqlite"
    with pytest.raises(StoreError):
        open_store(tmp_path, backend="parquet")


def test_describe_names_the_backend(backend):
    assert backend.name in backend.open().describe()


def test_sqlite_batch_rolls_back_atomically(tmp_path):
    """Nothing written inside a failed batch block survives (the SQLite
    half of the mid-commit guarantee; the JSON backend has no multi-write
    transaction to roll back)."""
    store = open_store(tmp_path, backend="sqlite")
    store.put_run(key(seed=1), sample_result(seed=1))
    with pytest.raises(RuntimeError, match="boom"):
        with store.batch():
            store.put_run(key(seed=2), sample_result(seed=2))
            store.put_run(key(seed=3), sample_result(seed=3))
            raise RuntimeError("boom")
    assert store.count() == 1
    assert store.get_run(key(seed=2)) is None
    # the store is usable again after the rollback
    store.put_run(key(seed=2), sample_result(seed=2))
    assert store.count() == 2
