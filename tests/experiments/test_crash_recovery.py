"""Crash-recovery tests for the leased campaign service.

Workers are independent processes coordinating only through the store
and the lease queue, so the service's whole fault story reduces to two
kill points, both exercised here with real SIGKILLs:

* **mid-run** — the lease stops being heartbeaten, expires, and another
  worker re-leases and re-executes the job (runs are deterministic, so
  the re-execution writes the identical record, never a duplicate);
* **mid-commit** — SQLite commits result + lease completion as one
  transaction (neither or both survive); the JSON backend persists the
  record first, so the next leaseholder *adopts* the stored result
  without re-running it.

The acceptance test at the bottom pins the end-to-end claim: a 2-worker
SQLite campaign with one worker killed mid-campaign resumes to per-run
records bit-identical to an uninterrupted single-worker JSON campaign.
"""

import json
import os
import signal
import time

import pytest

from repro.experiments import campaign
from repro.experiments.campaign import plan_campaign, run_campaign
from repro.experiments.service.leases import job_id_for, queue_for_store
from repro.experiments.service.scheduler import (
    WorkerSettings,
    run_service_campaign,
    worker_loop,
)
from repro.experiments.store import ResultStore, open_store
from tests.experiments.test_campaign import (
    KW,
    executed_keys,
    fake_result,
    recording_execute,
)

#: Fast scheduler knobs: leases expire quickly, workers poll eagerly.
FAST = WorkerSettings(
    lease_ttl=1.0, heartbeat_interval=0.3, poll_interval=0.05
)


@pytest.fixture(params=["json", "sqlite"])
def store(request, tmp_path):
    return open_store(tmp_path / "results", backend=request.param)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


# ----------------------------------------------------------------------
# lease TTL expiry
# ----------------------------------------------------------------------
def test_expired_lease_returns_to_queue(store):
    clock = FakeClock()
    queue = queue_for_store(store, max_attempts=3, clock=clock)
    assert queue.seed(["job-a"]) == 1
    first = queue.lease("w1", ttl=5.0)
    assert first.job_id == "job-a" and first.attempt == 1
    # the lease is live: nobody else gets the job
    assert queue.lease("w2", ttl=5.0) is None
    assert queue.counts()["leased"] == 1
    # past the TTL the job is leasable again, as the next attempt
    clock.t = 6.0
    second = queue.lease("w2", ttl=5.0)
    assert second.job_id == "job-a" and second.attempt == 2
    # the original holder lost the lease: its completion is rejected
    assert queue.complete("w1", "job-a") is False
    assert queue.complete("w2", "job-a") is True
    assert queue.all_terminal()


def test_heartbeat_keeps_a_lease_alive(store):
    clock = FakeClock()
    queue = queue_for_store(store, clock=clock)
    queue.seed(["job-a"])
    queue.lease("w1", ttl=5.0)
    clock.t = 4.0
    assert queue.heartbeat("w1", "job-a", ttl=5.0)  # deadline -> 9.0
    clock.t = 8.0
    assert queue.lease("w2", ttl=5.0) is None  # still held
    clock.t = 10.0
    assert not queue.heartbeat("w1", "job-a", ttl=5.0)  # expired now
    assert queue.lease("w2", ttl=5.0).job_id == "job-a"


def test_job_exhausting_attempts_turns_failed(store):
    clock = FakeClock()
    queue = queue_for_store(store, max_attempts=2, clock=clock)
    queue.seed(["job-a"])
    for attempt in (1, 2):
        lease = queue.lease(f"w{attempt}", ttl=1.0)
        assert lease.attempt == attempt
        clock.t += 2.0  # the holder dies silently each time
    assert queue.lease("w9", ttl=1.0) is None
    assert queue.counts()["failed"] == 1
    assert "job-a" in queue.errors()
    assert queue.all_terminal()


# ----------------------------------------------------------------------
# SIGKILL mid-run: the job is re-leased and re-executed
# ----------------------------------------------------------------------
def kill_once_execute(log_path, sentinel, crash_filename):
    """Records executions; SIGKILLs its own worker process the first time
    it sees the crash spec (the sentinel file keeps it to one kill)."""

    def execute(spec):
        if (
            spec.key.filename == crash_filename
            and spec.attacked
            and not os.path.exists(sentinel)
        ):
            with open(sentinel, "w", encoding="utf-8"):
                pass
            os.kill(os.getpid(), signal.SIGKILL)
        with open(log_path, "a", encoding="utf-8") as handle:
            handle.write(f"{spec.key.filename}:{spec.key.config_hash}\n")
        if spec.kind == "text":
            return f"text artefact for {spec.target}"
        return fake_result(spec)

    return execute


def test_worker_killed_mid_run_job_completes_elsewhere(
    store, tmp_path, monkeypatch
):
    log_path = str(tmp_path / "executed.log")
    sentinel = str(tmp_path / "killed")
    specs = plan_campaign(["fig7a"], **KW)
    crash_spec = next(s for s in specs if s.attacked)
    monkeypatch.setattr(
        campaign,
        "execute_spec",
        kill_once_execute(log_path, sentinel, crash_spec.key.filename),
    )
    report = run_service_campaign(
        ["fig7a"], store=store, workers=2, settings=FAST, log_stream=None, **KW
    )
    assert os.path.exists(sentinel)  # the kill really happened
    assert report.ok
    assert report.executed == len(specs)
    # no lost results: every planned run is stored
    for spec in specs:
        assert store.has(spec.key), spec.describe()
    # no duplicated executions: each surviving run executed exactly once
    # (the killed attempt died before logging, so even the crash spec
    # appears once — its successful retry)
    executed = executed_keys(log_path)
    assert sorted(executed) == sorted(
        f"{s.key.filename}:{s.key.config_hash}" for s in specs
    )
    assert "fig7a" in report.outputs


def test_worker_dying_every_attempt_records_terminal_failure(
    store, tmp_path, monkeypatch
):
    """A job that kills every worker it touches ends ``failed`` after
    ``max_attempts`` instead of looping forever, and the campaign still
    finishes everything else."""
    log_path = str(tmp_path / "executed.log")
    specs = plan_campaign(["fig7a"], **KW)
    crash_spec = next(s for s in specs if s.attacked)

    def always_kill(spec):
        if spec.key == crash_spec.key:
            os.kill(os.getpid(), signal.SIGKILL)
        with open(log_path, "a", encoding="utf-8") as handle:
            handle.write(f"{spec.key.filename}:{spec.key.config_hash}\n")
        if spec.kind == "text":
            return "text"
        return fake_result(spec)

    monkeypatch.setattr(campaign, "execute_spec", always_kill)
    report = run_service_campaign(
        ["fig7a"],
        store=store,
        workers=2,
        retries=1,  # max_attempts = 2
        settings=FAST,
        log_stream=None,
        **KW,
    )
    assert not report.ok
    failed_keys = {s.key for s, _err in report.failed}
    assert failed_keys == {crash_spec.key}
    assert store.get_failure(crash_spec.key) is not None
    assert not store.has(crash_spec.key)
    for spec in specs:
        if spec.key != crash_spec.key:
            assert store.has(spec.key), spec.describe()


# ----------------------------------------------------------------------
# SIGKILL mid-commit: stored result with a dangling lease is adopted
# ----------------------------------------------------------------------
def test_stored_result_with_dangling_lease_is_adopted_not_rerun(
    store, tmp_path, monkeypatch
):
    """The JSON backend's mid-commit crash state: the record landed
    atomically but the worker died before completing its lease.  The next
    leaseholder must adopt the stored result — zero re-execution, zero
    duplicates.  (SQLite can never reach this state — result and
    completion commit atomically — but adoption must work there too,
    e.g. for leases seeded over an already-populated store.)"""
    log_path = str(tmp_path / "executed.log")
    monkeypatch.setattr(campaign, "execute_spec", recording_execute(log_path))
    specs = plan_campaign(["fig7a"], **KW)
    specs_by_job = {job_id_for(s.key): s for s in specs}
    # leases grant jobs in sorted id order: the first is predictable
    crashed_spec = specs_by_job[sorted(specs_by_job)[0]]
    queue = queue_for_store(store)
    queue.seed(specs_by_job)
    # reproduce the dead worker: lease held, result persisted, no complete
    lease = queue.lease("dead-worker", ttl=0.3)
    assert lease.job_id == job_id_for(crashed_spec.key)
    campaign._store_result(store, crashed_spec, fake_result(crashed_spec))
    time.sleep(0.4)  # the dangling lease expires
    completed = worker_loop("w1", store, queue, specs_by_job, FAST)
    assert completed == len(specs)
    assert queue.all_terminal()
    assert queue.counts()["done"] == len(specs)
    # the crashed spec was adopted, never re-executed
    crashed_id = f"{crashed_spec.key.filename}:{crashed_spec.key.config_hash}"
    executed = executed_keys(log_path)
    assert crashed_id not in executed
    assert len(executed) == len(specs) - 1


def test_sqlite_result_and_lease_completion_commit_atomically(tmp_path):
    """The SQLite mid-commit guarantee itself: a worker dying inside the
    result+complete transaction leaves *neither* — no stored record with
    a done lease, no done lease without a record."""
    store = open_store(tmp_path, backend="sqlite")
    queue = queue_for_store(store)
    specs = plan_campaign(["fig12a"], **KW)
    spec = specs[0]
    queue.seed([job_id_for(spec.key)])
    lease = queue.lease("w1", ttl=30.0)

    class Died(BaseException):
        pass

    with pytest.raises(Died):
        with store.batch():
            campaign._store_result(store, spec, "artefact")
            assert queue.complete("w1", lease.job_id)
            raise Died()  # the crash point, after both writes
    assert not store.has(spec.key)
    assert queue.counts()["leased"] == 1  # the completion rolled back too
    # and the normal path commits both together
    with store.batch():
        campaign._store_result(store, spec, "artefact")
        assert queue.complete("w1", lease.job_id)
    assert store.has(spec.key)
    assert queue.counts()["done"] == 1


# ----------------------------------------------------------------------
# acceptance: interrupted sqlite service == uninterrupted json campaign
# ----------------------------------------------------------------------
def test_interrupted_sqlite_service_matches_uninterrupted_json_campaign(
    tmp_path, monkeypatch
):
    """The PR's acceptance bar, with real simulations: a seeded fig7a
    campaign through the SQLite backend with 2 workers, one SIGKILLed
    mid-campaign, resumes to the same figure-input results as an
    uninterrupted single-worker JSON-backend campaign — bit-identical
    per-run records and identical assembled output."""
    json_store = ResultStore(tmp_path / "json")
    reference = run_campaign(
        ["fig7a"], store=json_store, resume=True, processes=1,
        log_stream=None, **KW,
    )
    assert reference.ok

    specs = plan_campaign(["fig7a"], **KW)
    crash_spec = next(s for s in specs if s.attacked)
    sentinel = tmp_path / "killed"
    real_execute = campaign.execute_spec

    def kill_once_then_real(spec):
        if spec.key == crash_spec.key and not sentinel.exists():
            sentinel.write_text("x")
            os.kill(os.getpid(), signal.SIGKILL)
        return real_execute(spec)

    monkeypatch.setattr(campaign, "execute_spec", kill_once_then_real)
    sqlite_store = open_store(tmp_path / "sqlite", backend="sqlite")
    report = run_service_campaign(
        ["fig7a"],
        store=sqlite_store,
        workers=2,
        settings=WorkerSettings(
            lease_ttl=2.0, heartbeat_interval=0.5, poll_interval=0.05
        ),
        log_stream=None,
        **KW,
    )
    assert sentinel.exists()  # one worker really died mid-campaign
    assert report.ok
    assert report.executed == len(specs)

    json_keys = sorted(
        json_store.iter_keys(),
        key=lambda k: (k.target, k.config_hash, k.seed, k.attacked),
    )
    sqlite_keys = sorted(
        sqlite_store.iter_keys(),
        key=lambda k: (k.target, k.config_hash, k.seed, k.attacked),
    )
    assert json_keys == sqlite_keys and len(json_keys) == len(specs)

    def canonical(record):
        # Simulations are deterministic; the only nondeterminism in a
        # record is how long the run took on the host.  Mask the two
        # wall-clock perf counters, then require bitwise identity.
        extras = record["result"]["extras"]
        for counter in ("wall_time_s", "events_per_wall_sec"):
            assert counter in extras
            extras[counter] = 0.0
        return json.dumps(record, sort_keys=True)

    for k in json_keys:  # bit-identical per-run records
        assert canonical(json_store.get_record(k)) == canonical(
            sqlite_store.get_record(k)
        )
    assert report.outputs["fig7a"] == reference.outputs["fig7a"]
