"""Tests for the analysis helpers (stats + text plotting)."""

import pytest

from repro.analysis import (
    confidence_interval,
    mean,
    paired_difference_interval,
    sample_std,
    series_table,
    sparkline,
)
from repro.analysis.stats import significantly_positive


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_sample_std_known_value(self):
        assert sample_std([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(
            2.13809, rel=1e-4
        )

    def test_sample_std_single_sample(self):
        assert sample_std([5.0]) == 0.0

    def test_confidence_interval_contains_mean(self):
        m, low, high = confidence_interval([0.4, 0.5, 0.6])
        assert low <= m <= high
        assert m == pytest.approx(0.5)

    def test_confidence_interval_single_sample_degenerate(self):
        m, low, high = confidence_interval([0.7])
        assert m == low == high == 0.7

    def test_interval_narrows_with_more_samples(self):
        tight = confidence_interval([0.5] * 2 + [0.6] * 2 + [0.4] * 2)
        loose = confidence_interval([0.5, 0.6])
        assert (tight[2] - tight[1]) < (loose[2] - loose[1])

    def test_unsupported_level_rejected(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0], level=0.99)

    def test_paired_difference_interval(self):
        baseline = [0.9, 0.8, 0.85, 0.95]
        treatment = [0.4, 0.3, 0.35, 0.45]
        m, low, high = paired_difference_interval(baseline, treatment)
        assert m == pytest.approx(0.5)
        assert low > 0.0

    def test_paired_requires_equal_length(self):
        with pytest.raises(ValueError):
            paired_difference_interval([1.0], [1.0, 2.0])

    def test_significantly_positive(self):
        assert significantly_positive([0.9, 0.9, 0.9], [0.1, 0.2, 0.1]) is True
        assert significantly_positive([0.5, 0.4], [0.45, 0.5]) is False
        assert significantly_positive([0.9], [0.1]) is None


class TestTextPlot:
    def test_sparkline_length_matches_input(self):
        assert len(sparkline([0.0, 0.5, 1.0])) == 3

    def test_sparkline_extremes(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == " "
        assert line[1] == "█"

    def test_sparkline_none_renders_gap(self):
        assert sparkline([None, 1.0], gap="·")[0] == "·"

    def test_sparkline_clamps_out_of_range(self):
        assert sparkline([2.0])[0] == "█"
        assert sparkline([-1.0])[0] == " "

    def test_sparkline_invalid_bounds(self):
        with pytest.raises(ValueError):
            sparkline([0.5], lo=1.0, hi=0.0)

    def test_series_table_contains_labels_and_axis(self):
        table = series_table(
            [("af", [1.0, 1.0, 0.9]), ("atk", [0.5, 0.4, 0.3])], bin_width=5.0
        )
        assert "af " in table and "atk" in table
        assert "15s" in table

    def test_series_table_empty(self):
        assert series_table([], bin_width=5.0) == "(no series)"
