"""Tests for the ledgered `explain` pipeline: passivity, conservation,
and the attack-loss attribution the paper's mechanics predict."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.explain import (
    EXPLAIN_TARGETS,
    conservation_report,
    explain,
)
from repro.experiments.runner import run_single
from repro.observability.ledger import reasons
from tests.experiments._golden_capture import outcome_digest

pytestmark = pytest.mark.slow

DURATION = 30.0
SEED = 7


@pytest.fixture(scope="module")
def inter_explained():
    return explain("inter-area", runs=1, duration=DURATION, seed=SEED)


def test_ledger_is_passive_bit_identical_run(inter_explained):
    """The acceptance gate: a ledgered run and a plain run of the same
    (config, seed) produce byte-identical packet outcomes."""
    config = ExperimentConfig.inter_area_default(duration=DURATION, seed=SEED)
    plain = run_single(config, attacked=True, seed=SEED)
    ledgered = inter_explained.atk_runs[0]
    assert outcome_digest(plain) == outcome_digest(ledgered)
    assert plain.overall_rate == ledgered.overall_rate
    assert plain.extras["frames_sent"] == ledgered.extras["frames_sent"]
    assert plain.drop_breakdown is None
    assert ledgered.drop_breakdown is not None


def test_conservation_attacked_and_attack_free(inter_explained):
    """Every originated packet has exactly one terminal outcome, with and
    without the attacker."""
    assert all(conservation_report(inter_explained).values())
    for run in inter_explained.af_runs + inter_explained.atk_runs:
        assert sum(run.drop_breakdown.values()) == run.n_packets


def test_interception_losses_are_unreachable_next_hop(inter_explained):
    """≥99 % of the attack-induced inter-area losses must be silently-lost
    unicasts to an unreachable next hop — the paper's core mechanism."""
    af = inter_explained.af_runs[0].drop_breakdown
    atk = inter_explained.atk_runs[0].drop_breakdown
    added = {
        r: atk.get(r, 0) - af.get(r, 0)
        for r in set(af) | set(atk)
        if r != reasons.DELIVERED and atk.get(r, 0) - af.get(r, 0) > 0
    }
    total = sum(added.values())
    assert total > 0, "the attack dropped no packets in this window"
    share = added.get(reasons.UNREACHABLE_NEXT_HOP, 0) / total
    assert share >= 0.99


def test_drop_breakdown_lands_in_extras(inter_explained):
    run = inter_explained.atk_runs[0]
    for reason, count in run.drop_breakdown.items():
        assert run.extras[f"ledger_{reason}"] == float(count)


def test_protocol_stats_always_land_in_extras(inter_explained):
    run = inter_explained.atk_runs[0]
    assert run.extras["stats_router_originated"] == float(run.n_packets)
    assert run.extras["stats_gf_selections"] >= 0.0


def test_format_names_the_dominant_loss(inter_explained):
    text = inter_explained.format()
    assert "unreachable-next-hop" in text
    assert "dominant attack-induced loss" in text


def test_explain_rejects_unknown_target():
    with pytest.raises(ValueError):
        explain("fig7", runs=1, duration=5.0, seed=1)
    assert "inter-area" in EXPLAIN_TARGETS


def test_journeys_mode_records_hop_sequences():
    result = explain(
        "inter-area", runs=1, duration=10.0, seed=SEED, journeys=5
    )
    ledger = result.atk_ledgers[0]
    journeyed = [r for r in ledger.records() if ledger.journey(r.kind, r.packet_id)]
    assert journeyed, "journeys mode recorded no events"
    first = journeyed[0]
    actions = [e.action for e in ledger.journey(first.kind, first.packet_id)]
    assert actions[0] == "originated"
    text = result.format(journeys=5)
    assert "journeys of up to 5 undelivered attacked packets" in text


def test_cli_explain_dispatch(capsys):
    from repro.experiments.cli import main

    code = main(
        ["explain", "inter-area", "--duration", "10", "--seed", "7"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "packet drop breakdown" in out
    assert "delivered" in out


def test_cli_explain_requires_subcommand_form():
    from repro.experiments.cli import main

    with pytest.raises(SystemExit):
        main(["explain"])
