"""Capture golden digests for the seed-paired equivalence regression test.

Run manually (never by pytest) to regenerate the literals embedded in
``tests/experiments/test_seed_equivalence.py``::

    PYTHONPATH=src python tests/experiments/_golden_capture.py

The digests are computed from full-precision outcome fields, so they only
match if the channel refactor preserves the exact delivery order and RNG
draw order of the original implementation.
"""

from __future__ import annotations

import hashlib

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_single


def outcome_digest(result) -> str:
    # packet_id is deliberately excluded: it embeds the link-layer address,
    # which comes from a process-global counter and therefore depends on how
    # many Worlds ran earlier in the same process.  Every behavioral field
    # is kept at full float precision.
    rows = [
        (
            o.send_time,
            o.source_x,
            o.direction,
            o.success,
            o.receivers,
            o.denominator,
            o.in_fully_covered_area,
            o.delivery_latency,
        )
        for o in result.outcomes
    ]
    return hashlib.sha256(repr(rows).encode()).hexdigest()


def describe(label, config, attacked):
    result = run_single(config, attacked=attacked)
    print(f'    "{label}": {{')
    print(f'        "digest": "{outcome_digest(result)}",')
    print(f'        "n_packets": {result.n_packets},')
    print(f'        "overall_rate": {result.overall_rate!r},')
    print(f'        "frames_sent": {int(result.extras["frames_sent"])},')
    print(
        f'        "frames_delivered": {int(result.extras["frames_delivered"])},'
    )
    print(f'        "unicast_lost": {int(result.extras["unicast_lost"])},')
    print("    },")


def main():
    inter = ExperimentConfig.inter_area_default(duration=20.0, seed=7)
    intra = ExperimentConfig.intra_area_default(duration=20.0, seed=7)
    lossy = inter.with_(channel_loss_rate=0.05)
    print("GOLDEN = {")
    describe("inter-af", inter, False)
    describe("inter-atk", inter, True)
    describe("intra-atk", intra, True)
    describe("lossy-af", lossy, False)
    print("}")


if __name__ == "__main__":
    main()
