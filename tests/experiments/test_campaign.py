"""Tests for the fault-tolerant campaign orchestrator.

The pool workers are forked (Linux default start method), so patching
``campaign.execute_spec`` in the parent before ``run_campaign`` spawns the
pool substitutes the workers' behaviour too — that is how crashes, hangs
and execution counters are injected without touching the orchestrator.
"""

import os

import pytest

from repro.experiments import campaign
from repro.experiments.campaign import (
    CampaignError,
    MissingRunError,
    assemble_target,
    plan_campaign,
    resolve_targets,
    run_campaign,
)
from repro.experiments.figures import fig7
from repro.experiments.metrics import BinnedRates
from repro.experiments.runner import RunResult
from repro.experiments.store import ResultStore

KW = dict(runs=1, duration=6.0, seed=1)


def fake_result(spec):
    """A structurally-valid RunResult standing in for a real simulation."""
    return RunResult(
        seed=spec.seed,
        attacked=spec.attacked,
        binned=BinnedRates(
            bin_width=spec.config.bin_width, rates=[0.75, 0.5]
        ),
        overall_rate=0.625,
        n_packets=8,
        outcomes=[],
        extras={"frames_sent": 10.0},
    )


def recording_execute(log_path):
    """An execute_spec substitute that appends every executed key to a file."""

    def execute(spec):
        with open(log_path, "a", encoding="utf-8") as handle:
            handle.write(f"{spec.key.filename}:{spec.key.config_hash}\n")
        if spec.kind == "text":
            return f"text artefact for {spec.target}"
        return fake_result(spec)

    return execute


def executed_keys(log_path):
    if not os.path.exists(log_path):
        return []
    with open(log_path, encoding="utf-8") as handle:
        return [line.strip() for line in handle if line.strip()]


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
def test_plan_expands_ab_target_to_seed_paired_specs():
    specs = plan_campaign(["fig7a"], runs=2, duration=6.0, seed=1)
    assert len(specs) == 12  # 3 settings x 2 seeds x (af, atk)
    assert {s.seed for s in specs} == {1, 2}
    assert sum(1 for s in specs if s.attacked) == 6


def test_plan_text_target_is_single_spec():
    specs = plan_campaign(["fig12a"], **KW)
    assert len(specs) == 1
    assert specs[0].kind == "text"


def test_plan_dedups_overlapping_targets():
    merged = plan_campaign(["fig7", "fig7a"], **KW)
    alone = plan_campaign(["fig7"], **KW)
    assert len(merged) == len(alone)


def test_resolve_targets_expands_aliases_and_rejects_unknown():
    assert resolve_targets(["fig7"])[:2] == ["fig7a", "fig7b"]
    with pytest.raises(CampaignError):
        resolve_targets(["fig99"])


# ----------------------------------------------------------------------
# resume: stored runs are not re-executed
# ----------------------------------------------------------------------
def test_resume_executes_only_missing_runs(tmp_path, monkeypatch):
    log_path = str(tmp_path / "executed.log")
    monkeypatch.setattr(campaign, "execute_spec", recording_execute(log_path))
    store = ResultStore(tmp_path / "results")

    specs = plan_campaign(["fig7a"], **KW)
    prestored = specs[: len(specs) // 2]
    for spec in prestored:
        store.put_run(spec.key, fake_result(spec), config=spec.config)

    report = run_campaign(
        ["fig7a"], store=store, resume=True, processes=2, log_stream=None, **KW
    )
    assert report.skipped == len(prestored)
    assert report.executed == len(specs) - len(prestored)
    assert report.ok
    executed = executed_keys(log_path)
    assert len(executed) == len(specs) - len(prestored)
    prestored_ids = {f"{s.key.filename}:{s.key.config_hash}" for s in prestored}
    assert not prestored_ids & set(executed)

    # Second resume: the store is complete, nothing runs at all.
    os.unlink(log_path)
    report2 = run_campaign(
        ["fig7a"], store=store, resume=True, processes=2, log_stream=None, **KW
    )
    assert report2.executed == 0
    assert report2.skipped == len(specs)
    assert executed_keys(log_path) == []


def test_without_resume_stored_runs_are_re_executed(tmp_path, monkeypatch):
    log_path = str(tmp_path / "executed.log")
    monkeypatch.setattr(campaign, "execute_spec", recording_execute(log_path))
    store = ResultStore(tmp_path / "results")
    specs = plan_campaign(["fig12a"], **KW)
    for spec in specs:
        store.put_text(spec.key, "stale")
    report = run_campaign(
        ["fig12a"], store=store, resume=False, log_stream=None, **KW
    )
    assert report.executed == len(specs)
    assert store.get_text(specs[0].key) != "stale"


# ----------------------------------------------------------------------
# crash isolation / retry
# ----------------------------------------------------------------------
def crashing_execute(log_path, crash_key_filename):
    """Counts executions; hard-kills the worker for one particular spec."""

    def execute(spec):
        with open(log_path, "a", encoding="utf-8") as handle:
            handle.write(f"{spec.key.filename}:{spec.key.config_hash}\n")
        if spec.key.filename == crash_key_filename and spec.attacked:
            os._exit(13)  # simulated segfault: no result, no cleanup
        if spec.kind == "text":
            return "text"
        return fake_result(spec)

    return execute


def test_crashing_worker_is_retried_then_recorded_failed(tmp_path, monkeypatch):
    log_path = str(tmp_path / "executed.log")
    store = ResultStore(tmp_path / "results")
    specs = plan_campaign(["fig7a"], **KW)
    crash_spec = next(s for s in specs if s.attacked)
    monkeypatch.setattr(
        campaign,
        "execute_spec",
        crashing_execute(log_path, crash_spec.key.filename),
    )

    report = run_campaign(
        ["fig7a"],
        store=store,
        resume=True,
        processes=2,
        timeout=1.0,  # short watchdog so the dead worker costs little
        retries=1,
        log_stream=None,
        **KW,
    )
    # The campaign survived the dead workers and completed everything else.
    assert not report.ok
    crashed = [s for s, _err in report.failed]
    assert all(s.attacked for s in crashed)
    healthy = [s for s in specs if s.key.filename != crash_spec.key.filename
               or not s.attacked]
    for spec in healthy:
        assert store.has(spec.key), spec.describe()
    # Every crashed spec was attempted retries+1 times, then recorded failed.
    for spec in crashed:
        assert store.get_failure(spec.key) is not None
        assert not store.has(spec.key)
    crash_ids = {f"{s.key.filename}:{s.key.config_hash}" for s in crashed}
    executed = executed_keys(log_path)
    for crash_id in crash_ids:
        assert executed.count(crash_id) == 2  # initial attempt + 1 retry
    # The figure cannot assemble while runs are missing...
    assert "fig7a" in report.errors
    with pytest.raises(MissingRunError):
        assemble_target("fig7a", store, duration=6.0, runs=1, seed=1)


def test_raising_worker_is_retried_in_process(tmp_path, monkeypatch):
    """A Python-level exception is caught in the worker (no pool teardown)."""
    attempts_path = str(tmp_path / "attempts.log")

    def flaky_execute(spec):
        with open(attempts_path, "a", encoding="utf-8") as handle:
            handle.write("x")
        # Fail the first attempt of everything, succeed afterwards.
        if os.path.getsize(attempts_path) <= 1:
            raise ValueError("transient failure")
        if spec.kind == "text":
            return "text"
        return fake_result(spec)

    monkeypatch.setattr(campaign, "execute_spec", flaky_execute)
    store = ResultStore(tmp_path / "results")
    report = run_campaign(
        ["fig12a"], store=store, resume=True, retries=2, log_stream=None, **KW
    )
    assert report.ok
    assert report.retried == 1
    assert report.executed == 1


def test_timed_out_run_is_recorded_failed(tmp_path, monkeypatch):
    def sleepy_execute(spec):
        import time

        time.sleep(30.0)
        return None  # pragma: no cover - killed by the alarm first

    monkeypatch.setattr(campaign, "execute_spec", sleepy_execute)
    store = ResultStore(tmp_path / "results")
    report = run_campaign(
        ["fig12a"],
        store=store,
        resume=True,
        timeout=0.3,
        retries=1,
        log_stream=None,
        **KW,
    )
    assert not report.ok
    assert len(report.failed) == 1
    spec, error = report.failed[0]
    assert "RunTimeout" in error
    assert store.get_failure(spec.key) is not None


# ----------------------------------------------------------------------
# store-backed assembly == fresh in-memory run
# ----------------------------------------------------------------------
def test_store_backed_output_identical_to_fresh_run(tmp_path):
    store = ResultStore(tmp_path / "results")
    report = run_campaign(
        ["fig7a"], store=store, resume=True, processes=2, log_stream=None, **KW
    )
    assert report.ok
    fresh = fig7.fig7a(runs=1, duration=6.0, processes=1, seed=1).format()
    assert report.outputs["fig7a"] == fresh
    # And assembling again later (fresh process, store only) matches too.
    assert assemble_target(
        "fig7a", store, runs=1, duration=6.0, seed=1
    ) == fresh
