"""Tests for the Fig 12 impact and Fig 13 safety scenarios (short runs)."""

import pytest

from repro.experiments.impact import (
    compare_impact,
    impact_config,
    run_impact_case,
)
from repro.experiments.safety import compare_safety, run_safety_case


class TestImpactConfig:
    def test_case1_is_inter_area_empty_start(self):
        config = impact_config("1")
        assert config.attack.kind.value == "inter-area"
        assert config.road.prepopulate is False
        assert config.road.directions == 1

    def test_case2_is_intra_area_populated(self):
        config = impact_config("2")
        assert config.attack.kind.value == "intra-area"
        assert config.road.prepopulate is True
        assert config.attack.attack_range == 500.0

    def test_unknown_case_rejected(self):
        with pytest.raises(ValueError):
            impact_config("3")


class TestCase2Short:
    """Case 2 resolves within seconds, so a short run is meaningful."""

    def test_attack_free_blocks_entrance_quickly(self):
        run = run_impact_case("2", attacked=False, duration=30.0, seed=4)
        assert run.block_time is not None
        assert run.block_time < 15.0
        # Vehicle counts sampled every second.
        assert len(run.times) == pytest.approx(30, abs=2)

    def test_attacked_never_blocks_and_grows(self):
        af = run_impact_case("2", attacked=False, duration=40.0, seed=4)
        atk = run_impact_case("2", attacked=True, duration=40.0, seed=4)
        assert atk.block_time is None
        assert atk.final_count > af.final_count

    def test_compare_impact_formats(self):
        comparison = compare_impact("2", duration=20.0, seed=4)
        text = comparison.format()
        assert "Fig12 case 2" in text
        assert "attack-free" in text and "attacked" in text


class TestSafetyScenario:
    def test_attack_free_no_collision(self):
        run = run_safety_case(attacked=False, seed=1)
        assert not run.collided
        assert run.v2_warned_at is not None
        assert run.warning_sent_at is not None
        assert run.v2_warned_at > run.warning_sent_at

    def test_warning_relay_is_fast_attack_free(self):
        run = run_safety_case(attacked=False, seed=1)
        # One CBF contention timer, in the 1-100 ms window.
        assert run.v2_warned_at - run.warning_sent_at < 0.2

    def test_attacked_collides(self):
        run = run_safety_case(attacked=True, seed=1)
        assert run.collided
        assert run.v2_warned_at is None

    def test_collision_happens_in_hazard_zone(self):
        run = run_safety_case(attacked=True, seed=1)
        idx = run.times.index(
            min(run.times, key=lambda t: abs(t - run.collision_at))
        )
        assert 480.0 < run.v1_positions[idx] < 560.0

    def test_speeds_recorded_every_step(self):
        run = run_safety_case(attacked=False, seed=1, duration=10.0)
        assert len(run.times) == len(run.v1_speeds) == len(run.v2_speeds)
        assert len(run.times) == pytest.approx(100, abs=2)

    def test_attack_free_v2_slows_after_warning(self):
        run = run_safety_case(attacked=False, seed=1)
        warned_idx = next(
            i for i, t in enumerate(run.times) if t >= run.v2_warned_at
        )
        v_before = run.v2_speeds[warned_idx]
        v_after_2s = run.v2_speeds[min(warned_idx + 20, len(run.v2_speeds) - 1)]
        assert v_after_2s < v_before

    def test_collision_freezes_vehicles(self):
        run = run_safety_case(attacked=True, seed=1)
        assert run.v1_speeds[-1] == 0.0
        assert run.v2_speeds[-1] == 0.0

    def test_compare_safety_format(self):
        comparison = compare_safety(seed=1)
        text = comparison.format()
        assert "COLLISION" in text
        assert "no collision" in text

    def test_min_gap_attack_free_stays_safe(self):
        run = run_safety_case(attacked=False, seed=1)
        assert run.min_gap > 20.0
