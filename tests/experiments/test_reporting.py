"""Tests for reporting and the tables/CLI plumbing."""

import dataclasses

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import (
    FigureResult,
    FigureSeries,
    cumulative_table,
    fmt_pct,
)
from repro.experiments.runner import run_ab


def tiny_ab():
    config = ExperimentConfig.intra_area_default(duration=6.0, seed=2)
    config = config.with_(road=dataclasses.replace(config.road, length=1000.0))
    return run_ab(config, runs=1)


def test_fmt_pct():
    assert fmt_pct(0.5).strip() == "50.0%"
    assert fmt_pct(None).strip() == "n/a"


def test_figure_result_add_get_format():
    result = FigureResult(figure_id="FigX", title="test figure")
    ab = tiny_ab()
    result.add("series-1", ab)
    assert result.get("series-1").result is ab
    text = result.format()
    assert "FigX" in text and "series-1" in text
    with pytest.raises(KeyError):
        result.get("missing")


def test_bin_table_renders_all_series():
    result = FigureResult(figure_id="FigX", title="t")
    result.add("s", tiny_ab())
    table = result.bin_table()
    assert "[af ]" in table and "[atk]" in table


def test_cumulative_table():
    result = FigureResult(figure_id="FigY", title="t")
    result.add("s", tiny_ab())
    table = cumulative_table("FigY", result.series, bin_width=5.0)
    assert table.startswith("FigY")


def test_table1_lists_idm_parameters():
    from repro.experiments.figures.tables import table1

    text = table1()
    assert "30 m/s" in text
    assert "1.5 s" in text
    assert "3.0 m/s^2" in text


def test_table2_lists_ranges():
    from repro.experiments.figures.tables import table2

    text = table2()
    assert "1,283" in text
    assert "1,703" in text
    assert "486" in text and "593" in text
    assert "327" in text and "359" in text


def test_cli_runs_tables(capsys):
    from repro.experiments.cli import main

    assert main(["table1"]) == 0
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out and "Table II" in out


def test_cli_rejects_unknown_target():
    from repro.experiments.cli import main

    with pytest.raises(SystemExit):
        main(["not-a-figure"])


def test_cli_overhead_target(capsys):
    from repro.experiments.cli import main

    assert main(["overhead", "--duration", "8"]) == 0
    out = capsys.readouterr().out
    assert "mitigation overhead model" in out
    assert "plausibility check" in out


def test_figure_result_sketch_renders():
    result = FigureResult(figure_id="FigZ", title="sketch test")
    result.add("s", tiny_ab())
    sketch = result.sketch()
    assert "FigZ" in sketch
    assert "s af " in sketch
