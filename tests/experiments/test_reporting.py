"""Tests for reporting and the tables/CLI plumbing."""

import dataclasses

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import (
    FigureResult,
    cumulative_table,
    fmt_pct,
)
from repro.experiments.runner import run_ab


def tiny_ab():
    config = ExperimentConfig.intra_area_default(duration=6.0, seed=2)
    config = config.with_(road=dataclasses.replace(config.road, length=1000.0))
    return run_ab(config, runs=1)


def test_fmt_pct():
    assert fmt_pct(0.5).strip() == "50.0%"
    assert fmt_pct(None).strip() == "n/a"


def test_figure_result_add_get_format():
    result = FigureResult(figure_id="FigX", title="test figure")
    ab = tiny_ab()
    result.add("series-1", ab)
    assert result.get("series-1").result is ab
    text = result.format()
    assert "FigX" in text and "series-1" in text
    with pytest.raises(KeyError):
        result.get("missing")


def test_bin_table_renders_all_series():
    result = FigureResult(figure_id="FigX", title="t")
    result.add("s", tiny_ab())
    table = result.bin_table()
    assert "[af ]" in table and "[atk]" in table


def test_cumulative_table():
    result = FigureResult(figure_id="FigY", title="t")
    result.add("s", tiny_ab())
    table = cumulative_table("FigY", result.series, bin_width=5.0)
    assert table.startswith("FigY")


def test_table1_lists_idm_parameters():
    from repro.experiments.figures.tables import table1

    text = table1()
    assert "30 m/s" in text
    assert "1.5 s" in text
    assert "3.0 m/s^2" in text


def test_table2_lists_ranges():
    from repro.experiments.figures.tables import table2

    text = table2()
    assert "1,283" in text
    assert "1,703" in text
    assert "486" in text and "593" in text
    assert "327" in text and "359" in text


def test_cli_runs_tables(capsys):
    from repro.experiments.cli import main

    assert main(["table1"]) == 0
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out and "Table II" in out


def test_cli_rejects_unknown_target():
    from repro.experiments.cli import main

    with pytest.raises(SystemExit):
        main(["not-a-figure"])


def test_cli_overhead_target(capsys):
    from repro.experiments.cli import main

    assert main(["overhead", "--duration", "8"]) == 0
    out = capsys.readouterr().out
    assert "mitigation overhead model" in out
    assert "plausibility check" in out


def test_figure_result_sketch_renders():
    result = FigureResult(figure_id="FigZ", title="sketch test")
    result.add("s", tiny_ab())
    sketch = result.sketch()
    assert "FigZ" in sketch
    assert "s af " in sketch


# ----------------------------------------------------------------------
# drop breakdown table / attribution
# ----------------------------------------------------------------------
def _ledgered_run(seed, attacked, breakdown):
    from repro.experiments.metrics import BinnedRates
    from repro.experiments.runner import RunResult

    return RunResult(
        seed=seed,
        attacked=attacked,
        binned=BinnedRates(bin_width=5.0, rates=[]),
        overall_rate=0.5,
        n_packets=sum(breakdown.values()),
        outcomes=[],
        drop_breakdown=breakdown,
    )


def test_drop_breakdown_table_columns_conserve():
    from repro.experiments.reporting import drop_breakdown_table

    af = [_ledgered_run(1, False, {"delivered": 30, "unreachable-next-hop": 9})]
    atk = [_ledgered_run(1, True, {"delivered": 19, "unreachable-next-hop": 20})]
    text = drop_breakdown_table(af, atk)
    assert "unreachable-next-hop" in text
    assert "total originated" in text
    total_line = next(
        line for line in text.splitlines() if "total originated" in line
    )
    assert "39" in total_line  # both columns sum to originations
    assert "+11" in text  # the attack's added unreachable-next-hop drops


def test_drop_breakdown_table_without_ledger_data():
    from repro.experiments.reporting import drop_breakdown_table

    af = [_ledgered_run(1, False, {})]
    af[0].drop_breakdown = None
    assert "no ledger data" in drop_breakdown_table(af, [])


def test_dominant_loss_attribution():
    from repro.experiments.reporting import dominant_loss

    af = [_ledgered_run(1, False, {"delivered": 30, "rhl-exhausted": 2})]
    atk = [
        _ledgered_run(
            1,
            True,
            {"delivered": 20, "rhl-exhausted": 3, "unreachable-next-hop": 9},
        )
    ]
    reason, excess, share = dominant_loss(af, atk)
    assert reason == "unreachable-next-hop"
    assert excess == 9
    assert share == 0.9
    # no added drops -> no attribution
    assert dominant_loss(af, af) is None
