"""Smoke tests for the figure drivers (miniature durations)."""


from repro.experiments.figures import fig7, fig9, fig14

KW = dict(runs=1, duration=6.0, processes=1, seed=1)


def test_fig7a_structure():
    result = fig7.fig7a(**KW)
    assert result.figure_id == "Fig7a"
    labels = [s.label for s in result.series]
    assert labels == ["wN", "mN", "mL"]
    for series in result.series:
        assert series.result.af_runs and series.result.atk_runs


def test_fig7c_includes_extra_mn_series():
    result = fig7.fig7c(**KW)
    labels = [s.label for s in result.series]
    assert labels == ["ttl=20s", "ttl=10s", "ttl=5s", "ttl=5s,mN"]


def test_fig7_panel_selection():
    results = fig7.figure7(panels="e", **KW)
    assert set(results) == {"e"}
    labels = [s.label for s in results["e"].series]
    assert labels == ["1 direction(s)", "2 direction(s)"]


def test_fig9a_structure():
    result = fig9.fig9a(**KW)
    assert [s.label for s in result.series] == ["wN", "mN", "mL"]


def test_fig9_source_location_study_shapes():
    study = fig9.source_location_study(
        attack_range=500.0, runs=1, duration=6.0, processes=1, seed=1
    )
    assert study.fully_covered_interval == (1986.0, 2014.0)
    assert study.inside_packets + study.outside_packets > 0
    text = study.format()
    assert "fully covered area" in text


def test_fig9_attack_range_tuning_labels():
    result = fig9.attack_range_tuning(
        ranges=(450.0, 500.0), runs=1, duration=6.0, processes=1, seed=1
    )
    assert [s.label for s in result.series] == ["range=450m", "range=500m"]


def test_fig14a_reports_mitigation_improvement_fields():
    result = fig14.fig14a(**KW)
    assert result.figure_id == "Fig14a"
    for series in result.series:
        assert series.unmitigated.atk_runs
        assert series.mitigated.atk_runs
    text = result.format()
    assert "mitigated=" in text


def test_fig14b_structure():
    result = fig14.fig14b(**KW)
    assert [s.label for s in result.series] == ["wN", "mN"]
