"""Tests for the urban scenario pack: config, world assembly, and the
store-backed ``urban`` campaign target."""

import pytest

from repro.errors import ConfigError
from repro.experiments.config import ExperimentConfig, UrbanConfig
from repro.experiments.runner import run_single
from repro.experiments.world import World

# A small, fast grid for world-level tests.
SMALL = dict(
    streets_x=3, streets_y=3, block_size=200.0, inter_vehicle_space=80.0
)


def urban_config(duration=15.0, seed=3, **overrides):
    return ExperimentConfig.inter_area_default(
        duration=duration, seed=seed
    ).urbanized(**{**SMALL, **overrides})


class TestConfig:
    def test_default_scenario_is_highway(self):
        assert ExperimentConfig().scenario == "highway"

    def test_urbanized_switches_scenario_and_overrides_knobs(self):
        config = ExperimentConfig.inter_area_default().urbanized(streets_x=5)
        assert config.scenario == "urban"
        assert config.urban.streets_x == 5
        # untouched urban knobs keep their defaults
        assert config.urban.block_size == UrbanConfig().block_size

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(scenario="rural")

    def test_urban_knobs_validated(self):
        with pytest.raises(ConfigError):
            UrbanConfig(streets_x=1)
        with pytest.raises(ConfigError):
            UrbanConfig(turn_probability=1.5)
        with pytest.raises(ConfigError):
            UrbanConfig(los_half_width=1.0, lane_width=4.0)


class TestWorldAssembly:
    def test_urban_world_wires_grid_and_shadowing(self):
        world = World(urban_config(), attacked=False)
        assert world.urban
        assert world.grid is not None
        assert world.road is None
        assert world.shadowing is not None
        assert world.channel.has_obstructions
        assert world.vehicles_on_road() > 0

    def test_highway_world_has_no_urban_machinery(self):
        config = ExperimentConfig.inter_area_default(duration=10.0)
        world = World(config, attacked=False)
        assert not world.urban
        assert world.grid is None
        assert world.shadowing is None
        assert not world.channel.has_obstructions

    def test_destinations_sit_on_the_central_street(self):
        world = World(urban_config(), attacked=False)
        for node in world.dest_nodes:
            assert world.shadowing.on_street(node.mobility.position())

    def test_attacker_mast_is_on_street(self):
        world = World(urban_config(), attacked=True)
        assert world.attacker is not None
        assert world.shadowing.on_street(world.attacker.position)

    def test_vehicle_nodes_follow_grid_positions(self):
        world = World(urban_config(), attacked=False)
        world.run(duration=5.0)
        for vehicle in world.traffic.vehicles():
            node = world.nodes.get(vehicle.vehicle_id)
            if node is None:
                continue
            pos = node.mobility.position()
            assert pos.x == vehicle.x and pos.y == vehicle.y


class TestUrbanRuns:
    @pytest.mark.slow
    def test_inter_area_delivers_attack_free(self):
        result = run_single(urban_config(duration=20.0), attacked=False)
        assert result.n_packets > 0
        assert result.overall_rate > 0.0

    @pytest.mark.slow
    def test_intra_area_flood_reaches_part_of_the_grid(self):
        config = ExperimentConfig.intra_area_default(
            duration=20.0, seed=3
        ).urbanized(**SMALL)
        result = run_single(config, attacked=False)
        assert result.n_packets > 0
        assert 0.0 < result.overall_rate <= 1.0

    @pytest.mark.slow
    def test_dcc_counters_only_appear_when_enabled(self):
        import dataclasses

        off = run_single(urban_config(duration=10.0), attacked=False)
        assert not any(k.startswith("stats_dcc_") for k in off.extras)
        cfg = urban_config(duration=10.0)
        cfg = cfg.with_(
            geonet=dataclasses.replace(cfg.geonet, dcc_enabled=True)
        )
        on = run_single(cfg, attacked=False)
        assert on.extras["stats_dcc_samples"] > 0


class TestUrbanSweep:
    def _shrink(self, monkeypatch):
        from repro.experiments import urban

        monkeypatch.setattr(urban, "ATTACKS", ("inter-area",))
        monkeypatch.setattr(urban, "SCENARIOS", ("highway", "urban"))
        monkeypatch.setattr(urban, "DCC_LEVELS", (False,))
        monkeypatch.setattr(urban, "FORWARDERS", ("sfot+",))
        monkeypatch.setattr(urban, "URBAN_OVERRIDES", dict(SMALL))

    def test_urban_sweep_renders_the_grid(self, monkeypatch):
        from repro.experiments import urban

        self._shrink(monkeypatch)
        sweep = urban.urban_sweep(runs=1, duration=10.0, seed=2)
        assert len(sweep.cells) == 2
        text = sweep.format()
        assert "scenario x DCC x forwarder" in text
        assert "urban" in text and "highway" in text
        cell = sweep.get("inter-area", "urban", False, "sfot+")
        assert cell.result.config.scenario == "urban"
        assert cell.result.config.geonet.cbf_variant == "sfot+"

    @pytest.mark.slow
    def test_urban_sweep_through_store_backed_campaign(
        self, monkeypatch, tmp_path
    ):
        from repro.experiments import urban
        from repro.experiments.campaign import run_campaign
        from repro.experiments.store import ResultStore

        self._shrink(monkeypatch)
        store = ResultStore(tmp_path)
        report = run_campaign(
            ["urban"], store=store, runs=1, duration=10.0, seed=2,
            resume=True, log_stream=None,
        )
        assert report.ok
        assert report.executed == 4  # 2 cells x (af + atk)
        assert "urban" in report.outputs["urban"]
        # Resume: nothing left to execute, the artefact assembles from
        # the store alone.
        again = run_campaign(
            ["urban"], store=store, runs=1, duration=10.0, seed=2,
            resume=True, log_stream=None,
        )
        assert again.executed == 0
        assert again.skipped == report.executed
        assert again.outputs["urban"] == report.outputs["urban"]
