"""Tests for metric computation (reception bins, γ/λ)."""

import pytest

from repro.experiments.metrics import (
    BinnedRates,
    PacketOutcome,
    RunMetrics,
    cumulative_drop_rates,
    mean_bin_rates,
    mean_drop_rate,
)


def outcome(t, success, **kwargs):
    return PacketOutcome(
        packet_id=(1, int(t * 10)),
        send_time=t,
        source_x=0.0,
        direction=1,
        success=success,
        **kwargs,
    )


class TestRunMetrics:
    def test_n_bins(self):
        assert RunMetrics(duration=200.0, bin_width=5.0).n_bins == 40
        assert RunMetrics(duration=7.0, bin_width=5.0).n_bins == 2

    def test_binning_by_send_time(self):
        m = RunMetrics(duration=10.0, bin_width=5.0)
        m.record(outcome(1.0, 1.0))
        m.record(outcome(2.0, 0.0))
        m.record(outcome(7.0, 1.0))
        rates = m.binned_rates().rates
        assert rates[0] == pytest.approx(0.5)
        assert rates[1] == pytest.approx(1.0)

    def test_empty_bins_are_none(self):
        m = RunMetrics(duration=15.0, bin_width=5.0)
        m.record(outcome(1.0, 1.0))
        rates = m.binned_rates().rates
        assert rates == [1.0, None, None]

    def test_send_time_at_duration_clamps_to_last_bin(self):
        m = RunMetrics(duration=10.0, bin_width=5.0)
        m.record(outcome(10.0, 1.0))
        rates = m.binned_rates().rates
        assert rates[1] == 1.0

    def test_overall_rate(self):
        m = RunMetrics(duration=10.0, bin_width=5.0)
        for s in (1.0, 0.0, 0.5, 0.5):
            m.record(outcome(1.0, s))
        assert m.overall_rate() == pytest.approx(0.5)

    def test_overall_rate_empty(self):
        assert RunMetrics(duration=10.0, bin_width=5.0).overall_rate() == 0.0


class TestAggregation:
    def test_mean_bin_rates_across_runs(self):
        a = BinnedRates(5.0, [1.0, 0.5, None])
        b = BinnedRates(5.0, [0.0, None, None])
        assert mean_bin_rates([a, b]) == [0.5, 0.5, None]

    def test_mean_bin_rates_empty(self):
        assert mean_bin_rates([]) == []

    def test_mean_drop_rate_relative(self):
        gamma = mean_drop_rate([1.0, 0.8], [0.0, 0.4], relative=True)
        assert gamma == pytest.approx((1.0 + 0.5) / 2)

    def test_mean_drop_rate_absolute(self):
        gamma = mean_drop_rate([1.0, 0.8], [0.0, 0.4], relative=False)
        assert gamma == pytest.approx((1.0 + 0.4) / 2)

    def test_drop_rate_skips_none_bins(self):
        gamma = mean_drop_rate([1.0, None, 0.5], [0.5, 0.2, None])
        assert gamma == pytest.approx(0.5)

    def test_drop_rate_skips_zero_af_bins_when_relative(self):
        gamma = mean_drop_rate([0.0, 1.0], [0.0, 0.5], relative=True)
        assert gamma == pytest.approx(0.5)

    def test_drop_rate_all_empty_returns_none(self):
        assert mean_drop_rate([None], [None]) is None

    def test_negative_drop_when_attack_helps(self):
        # A mL-range intra-area "attack" can raise reception; the metric
        # must represent that as a negative drop.
        gamma = mean_drop_rate([0.5], [0.8])
        assert gamma == pytest.approx(-0.6)

    def test_cumulative_drop_rates(self):
        drops = cumulative_drop_rates([1.0, 1.0, 1.0], [1.0, 0.0, 0.5])
        assert drops[0] == pytest.approx(0.0)
        assert drops[1] == pytest.approx(0.5)
        assert drops[2] == pytest.approx(0.5)

    def test_cumulative_handles_leading_none(self):
        drops = cumulative_drop_rates([None, 1.0], [None, 0.5])
        assert drops[0] is None
        assert drops[1] == pytest.approx(0.5)

    def test_binned_rates_overall(self):
        assert BinnedRates(5.0, [1.0, None, 0.0]).overall() == pytest.approx(0.5)
        assert BinnedRates(5.0, [None]).overall() is None
