"""Tests for the world builder (short runs to keep the suite fast)."""

import dataclasses

from repro.experiments.config import AttackKind, ExperimentConfig
from repro.experiments.world import World
from repro.traffic.road import Direction


def small_config(kind="inter", **overrides):
    factory = (
        ExperimentConfig.inter_area_default
        if kind == "inter"
        else ExperimentConfig.intra_area_default
    )
    config = factory(duration=10.0, seed=3)
    road = dataclasses.replace(config.road, length=1500.0)
    return config.with_(road=road, **overrides)


def test_world_builds_nodes_for_prepopulated_vehicles():
    world = World(small_config(), attacked=False)
    assert world.traffic.count_on_road() > 0
    assert len(world.nodes) == world.traffic.count_on_road()


def test_inter_world_has_two_destinations():
    world = World(small_config(), attacked=False)
    assert len(world.dest_nodes) == 2
    names = {n.name for n in world.dest_nodes}
    assert names == {"dest-east", "dest-west"}


def test_intra_world_has_no_destinations():
    world = World(small_config("intra"), attacked=False)
    assert world.dest_nodes == []


def test_attacker_only_in_attacked_world():
    assert World(small_config(), attacked=False).attacker is None
    assert World(small_config(), attacked=True).attacker is not None


def test_attacker_sits_mid_road_at_roadside():
    world = World(small_config(), attacked=True)
    assert world.attacker.position.x == 750.0
    assert world.attacker.position.y < 0


def test_exited_vehicles_shut_down_their_nodes():
    world = World(small_config(), attacked=False)
    world.run()
    for vehicle_id, node in world.nodes.items():
        assert not node.is_shut_down  # active map holds only live nodes
    # vehicles that exited were removed from the map
    active_ids = {v.vehicle_id for v in world.traffic.vehicles()}
    assert set(world.nodes) == active_ids


def test_inter_workload_generates_vulnerable_packets():
    world = World(small_config(), attacked=False)
    metrics = world.run()
    assert len(metrics.outcomes) >= 8  # one per second minus edges
    for outcome in metrics.outcomes:
        assert world.vulnerability.vulnerable(
            outcome.source_x, Direction(outcome.direction)
        )


def test_intra_workload_counts_receivers_against_snapshot():
    world = World(small_config("intra"), attacked=False)
    metrics = world.run()
    assert metrics.outcomes
    for outcome in metrics.outcomes:
        assert 0 < outcome.denominator
        assert 0.0 <= outcome.success <= 1.0
        assert outcome.receivers <= outcome.denominator


def test_paired_workload_is_identical_across_ab():
    af = World(small_config("intra"), attacked=False, seed=7).run()
    atk = World(small_config("intra"), attacked=True, seed=7).run()
    af_sources = [(o.send_time, round(o.source_x, 6)) for o in af.outcomes]
    atk_sources = [(o.send_time, round(o.source_x, 6)) for o in atk.outcomes]
    assert af_sources == atk_sources


def test_same_seed_reproduces_results():
    a = World(small_config("intra"), attacked=False, seed=5).run()
    b = World(small_config("intra"), attacked=False, seed=5).run()
    assert [o.success for o in a.outcomes] == [o.success for o in b.outcomes]


def test_different_seeds_differ():
    a = World(small_config("intra"), attacked=False, seed=5).run()
    b = World(small_config("intra"), attacked=False, seed=6).run()
    assert [round(o.source_x, 3) for o in a.outcomes] != [
        round(o.source_x, 3) for o in b.outcomes
    ]


def test_no_packets_in_final_second():
    world = World(small_config("intra"), attacked=False)
    metrics = world.run()
    assert all(o.send_time <= world.config.duration - 1.0 for o in metrics.outcomes)


def test_custom_workload_builder_suppresses_default():
    world = World(
        small_config("intra"), attacked=False, build_workload=lambda w: None
    )
    metrics = world.run()
    assert metrics.outcomes == []


def test_attack_kind_none_never_builds_attacker():
    config = small_config()
    config = config.with_(
        attack=dataclasses.replace(config.attack, kind=AttackKind.NONE)
    )
    world = World(config, attacked=True)
    assert world.attacker is None
