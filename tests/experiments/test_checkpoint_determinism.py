"""Golden determinism contract of checkpoint/restart.

The bar, from the ISSUE: *restore-then-run is bit-identical to the
uninterrupted run*.  Every test here compares the full serialized
RunResult (per-packet outcomes, binned rates, every ``extras`` counter —
only the two wall-clock perf counters masked, exactly as the existing
crash-recovery suite does) between an uninterrupted run and a run that
was checkpointed mid-flight, persisted through a result store backend,
restored and finished.

Covered dimensions: the default highway scenario, the batched-fleet hot
path combined with all four fault-injection dimensions, and the urban
(Manhattan-grid + shadowing) scenario pack — on both store backends.
"""

import json
import os
import signal

import pytest

from repro.experiments import checkpointing
from repro.experiments.checkpointing import (
    GracefulPreemption,
    run_single_resumable,
    save_checkpoint,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_single, summarize_world
from repro.experiments.store import RunKey, config_hash, jsonable, open_store
from repro.experiments.world import World, reset_id_counters
from repro.faults import (
    BeaconTimingPlan,
    ChurnPlan,
    FaultPlan,
    GpsFaultPlan,
    LinkFaultPlan,
)
from repro.sim.checkpoint import CHECKPOINT_VERSION, decode_envelope

DURATION = 6.0
SEED = 3


def _highway():
    return ExperimentConfig.inter_area_default(duration=DURATION, seed=SEED)


def _batched_with_faults():
    return _highway().with_(
        fleet_use_batched=True,
        faults=FaultPlan(
            link=LinkFaultPlan(loss_rate=0.05, burst_p=0.02, burst_r=0.3),
            churn=ChurnPlan(mean_uptime=4.0, mean_downtime=1.0),
            gps=GpsFaultPlan(error_stddev=1.5, drift_rate=0.2),
            beacon=BeaconTimingPlan(extra_jitter=0.01),
        ),
    )


def _urban():
    return _highway().urbanized(
        streets_x=3, streets_y=3, block_size=200.0, inter_vehicle_space=80.0
    )


CONFIGS = {
    "highway": _highway,
    "batched_faults": _batched_with_faults,
    "urban": _urban,
}


def masked(result) -> str:
    """Canonical byte string of a RunResult, wall-clock counters masked
    (the idiom of ``test_crash_recovery.canonical``)."""
    data = jsonable(result)
    for counter in ("wall_time_s", "events_per_wall_sec"):
        assert counter in data["extras"]
        data["extras"][counter] = 0.0
    return json.dumps(data, sort_keys=True)


def key_for(config) -> RunKey:
    return RunKey(
        target="ckpt",
        config_hash=config_hash(config),
        seed=SEED,
        attacked=True,
    )


def baseline_for(config) -> str:
    reset_id_counters()
    return masked(run_single(config, attacked=True, seed=SEED))


@pytest.fixture(params=["json", "sqlite"])
def store(request, tmp_path):
    return open_store(tmp_path / "results", backend=request.param)


@pytest.fixture(autouse=True)
def _clear_hooks(monkeypatch):
    monkeypatch.setattr(checkpointing, "_post_checkpoint_hook", None)
    monkeypatch.setattr(checkpointing, "_on_resume_hook", None)


# ----------------------------------------------------------------------
# the golden contract
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_restore_then_run_is_bit_identical(name, store):
    """Checkpoint at T/2 through the store, restore, run to T: the final
    record is byte-identical to the uninterrupted run."""
    config = CONFIGS[name]()
    baseline = baseline_for(config)

    reset_id_counters()
    world = World(config, attacked=True, seed=SEED)
    world.run(duration=DURATION / 2)
    key = key_for(config)
    save_checkpoint(store, key, world)
    del world

    # Scramble the module-global allocators to prove the restore path
    # reinstates them rather than inheriting this process's luck.
    reset_id_counters()
    envelope = store.get_checkpoint(key)
    assert envelope is not None
    assert envelope["sim_time"] == DURATION / 2
    restored = World.restore(decode_envelope(envelope))
    assert restored.sim.now == DURATION / 2
    restored.run(duration=DURATION)
    assert masked(summarize_world(restored)) == baseline


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_run_single_resumable_matches_run_single(name, store):
    """Segmented execution with interval checkpoints writes the identical
    record, and leaves its (GC-able) checkpoint behind."""
    config = CONFIGS[name]()
    baseline = baseline_for(config)
    key = key_for(config)

    reset_id_counters()
    result = run_single_resumable(
        config, attacked=True, seed=SEED, store=store, key=key, interval=2.0
    )
    assert masked(result) == baseline
    # the last interval checkpoint is still in the store until the caller
    # commits the result and garbage-collects it
    assert store.checkpoint_sim_time(key) == 4.0
    store.delete_checkpoint(key)
    assert store.checkpoint_sim_time(key) is None


def test_resume_picks_up_mid_run_checkpoint(store):
    """A stored checkpoint short-circuits the first half of the run."""
    config = _highway()
    baseline = baseline_for(config)
    key = key_for(config)

    reset_id_counters()
    world = World(config, attacked=True, seed=SEED)
    world.run(duration=3.0)
    save_checkpoint(store, key, world)
    del world

    resumed_from = []
    with pytest.MonkeyPatch.context() as mp:
        mp.setattr(
            checkpointing,
            "_on_resume_hook",
            lambda key, sim_time: resumed_from.append(sim_time),
        )
        reset_id_counters()
        result = run_single_resumable(
            config, attacked=True, seed=SEED, store=store, key=key,
            interval=100.0,
        )
    assert resumed_from == [3.0]  # resumed mid-run, not from scratch
    assert masked(result) == baseline


# ----------------------------------------------------------------------
# quarantine and fallback
# ----------------------------------------------------------------------
def _tampered_cases():
    def corrupt_payload(envelope):
        envelope["payload_b64"] = envelope["payload_b64"][:-20]
        return envelope

    def wrong_version(envelope):
        envelope["version"] = CHECKPOINT_VERSION + 1
        return envelope

    def wrong_identity(envelope):
        envelope["seed"] = 999
        return envelope

    return {
        "corrupt_payload": corrupt_payload,
        "wrong_version": wrong_version,
        "wrong_identity": wrong_identity,
    }


@pytest.mark.parametrize("case", sorted(_tampered_cases()))
def test_bad_checkpoint_quarantined_and_run_falls_back(case, store):
    """A stale/corrupt checkpoint costs time, never correctness: it is
    quarantined (with its evidence) and the run executes from scratch to
    the byte-identical record."""
    config = _highway()
    baseline = baseline_for(config)
    key = key_for(config)

    reset_id_counters()
    world = World(config, attacked=True, seed=SEED)
    world.run(duration=3.0)
    save_checkpoint(store, key, world)
    del world
    envelope = store.get_checkpoint(key)
    store.put_checkpoint(key, _tampered_cases()[case](envelope))

    resumed_from = []
    with pytest.MonkeyPatch.context() as mp:
        mp.setattr(
            checkpointing,
            "_on_resume_hook",
            lambda key, sim_time: resumed_from.append(sim_time),
        )
        reset_id_counters()
        result = run_single_resumable(
            config, attacked=True, seed=SEED, store=store, key=key,
            interval=100.0,
        )
    assert resumed_from == []  # never adopted the bad checkpoint
    assert masked(result) == baseline
    assert store.checkpoint_quarantine_count() >= 1
    assert store.get_checkpoint(key) is None  # evidence moved aside


# ----------------------------------------------------------------------
# graceful drain on SIGTERM
# ----------------------------------------------------------------------
def test_sigterm_drains_to_checkpoint_and_resume_completes(store):
    """SIGTERM mid-run saves a drain checkpoint and unwinds as a
    ``SystemExit``; a successor resumes from it to the identical record."""
    config = _highway()
    baseline = baseline_for(config)
    key = key_for(config)

    def sigterm_once(key, sim_time):
        if not getattr(sigterm_once, "fired", False):
            sigterm_once.fired = True
            os.kill(os.getpid(), signal.SIGTERM)

    with pytest.MonkeyPatch.context() as mp:
        mp.setattr(checkpointing, "_post_checkpoint_hook", sigterm_once)
        reset_id_counters()
        with pytest.raises(GracefulPreemption):
            run_single_resumable(
                config, attacked=True, seed=SEED, store=store, key=key,
                interval=2.0,
            )
    # interval save at t=2 triggered the signal; the drain ran the next
    # segment to t=4 and saved again before unwinding
    assert store.checkpoint_sim_time(key) == 4.0

    reset_id_counters()
    result = run_single_resumable(
        config, attacked=True, seed=SEED, store=store, key=key, interval=2.0
    )
    assert masked(result) == baseline
