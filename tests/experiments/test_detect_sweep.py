"""Tests for the ``detect`` sweep: cell scoring, the store-backed campaign
target, the batched-fleet detector blind-spot fix, and the golden
clean-run / pinned-false-positive guarantees."""

import dataclasses

import pytest

from repro.experiments import detect
from repro.experiments.config import DetectionConfig, ExperimentConfig
from repro.experiments.detect import DetectCell, detect_sweep
from repro.experiments.metrics import BinnedRates
from repro.experiments.runner import AbResult, RunResult, run_single
from repro.faults.plan import FaultPlan, GpsFaultPlan

SMALL_URBAN = dict(
    streets_x=3, streets_y=3, block_size=200.0, inter_vehicle_space=80.0
)


def shrink(monkeypatch, *, variants=("single",), scenarios=("highway",),
           impairments=None):
    monkeypatch.setattr(detect, "VARIANTS", tuple(variants))
    monkeypatch.setattr(detect, "DETECT_SCENARIOS", tuple(scenarios))
    monkeypatch.setattr(
        detect,
        "IMPAIRMENTS",
        impairments or (("clean", FaultPlan()),),
    )


def fake_run(*, attacked, seed=1, detection_s=-1.0, flagged=0.0,
             windows=8.0, alerts=0.0, replays=0.0):
    extras = {
        "detect_first_detection_s": detection_s,
        "detect_windows_flagged": flagged,
        "detect_windows_total": windows,
        "detect_alerts_total": alerts,
    }
    if attacked:
        extras["replays_sent"] = replays
    return RunResult(
        seed=seed,
        attacked=attacked,
        binned=BinnedRates(bin_width=5.0, rates=[0.4 if attacked else 0.8]),
        overall_rate=0.4 if attacked else 0.8,
        n_packets=10,
        outcomes=[],
        extras=extras,
    )


def fake_ab(config, af_runs, atk_runs):
    return AbResult(config=config, af_runs=af_runs, atk_runs=atk_runs)


# ----------------------------------------------------------------------
# cell scoring (pure, from synthetic extras)
# ----------------------------------------------------------------------
class TestCellMetrics:
    def cell(self, af_runs, atk_runs):
        config = ExperimentConfig.inter_area_default(duration=10.0)
        return DetectCell(
            scenario="highway", variant="single", impairment="clean",
            result=fake_ab(config, af_runs, atk_runs),
        )

    def test_recall_latency_precision_from_extras(self):
        cell = self.cell(
            af_runs=[fake_run(attacked=False), fake_run(attacked=False)],
            atk_runs=[
                fake_run(attacked=True, detection_s=5.0, flagged=3.0,
                         alerts=40.0, replays=100.0),
                fake_run(attacked=True, detection_s=15.0, flagged=1.0,
                         alerts=12.0, replays=90.0),
            ],
        )
        metrics = cell.metrics()
        assert metrics["recall"] == pytest.approx(1.0)
        assert metrics["latency"] == pytest.approx(10.0)
        assert metrics["precision"] == pytest.approx(1.0)
        assert metrics["fp_window_rate"] == pytest.approx(0.0)
        assert metrics["replays"] == pytest.approx(95.0)

    def test_impairment_flagging_af_runs_cost_precision(self):
        cell = self.cell(
            af_runs=[
                fake_run(attacked=False, flagged=2.0, alerts=30.0),
                fake_run(attacked=False),
            ],
            atk_runs=[
                fake_run(attacked=True, detection_s=5.0, flagged=4.0,
                         alerts=50.0),
            ],
        )
        metrics = cell.metrics()
        assert metrics["precision"] == pytest.approx(0.5)
        assert metrics["fp_window_rate"] == pytest.approx(2.0 / 16.0)
        assert metrics["fp_alerts"] == pytest.approx(30.0)

    def test_undetected_cell_has_no_latency(self):
        cell = self.cell(
            af_runs=[fake_run(attacked=False)],
            atk_runs=[fake_run(attacked=True)],
        )
        metrics = cell.metrics()
        assert metrics["recall"] == 0.0
        assert metrics["latency"] is None
        assert metrics["precision"] is None


# ----------------------------------------------------------------------
# sweep assembly (injected runner: no simulation)
# ----------------------------------------------------------------------
class TestSweepAssembly:
    def test_grid_covers_the_threat_matrix(self, monkeypatch):
        shrink(
            monkeypatch,
            variants=("single", "adaptive"),
            impairments=(
                ("clean", FaultPlan()),
                ("impaired", FaultPlan(gps=GpsFaultPlan(error_stddev=8.0))),
            ),
        )
        seen = []

        def runner(config, *, runs, processes):
            seen.append(config)
            detected = -1.0 if config.attack.variant == "adaptive" else 5.0
            return fake_ab(
                config,
                af_runs=[fake_run(attacked=False)],
                atk_runs=[fake_run(attacked=True, detection_s=detected,
                                   flagged=1.0 if detected > 0 else 0.0)],
            )

        sweep = detect_sweep(runs=1, duration=10.0, runner=runner)
        assert len(sweep.cells) == 4
        assert {c.config.attack.variant for c in map(
            lambda cell: cell.result, sweep.cells
        )} == {"single", "adaptive"}
        assert all(c.detection.enabled for c in seen)
        assert all(c.faults is not None for c in seen)
        cell = sweep.get("highway", "adaptive", "impaired")
        assert cell.result.config.label == "highway-adaptive-impaired"
        text = sweep.format()
        assert "recall" in text and "latency" in text
        # The acceptance headline: adaptive recall below static recall.
        assert "adaptive replay throttling cuts recall" in text

    def test_urban_cells_use_the_urban_scenario(self, monkeypatch):
        shrink(monkeypatch, scenarios=("urban",))

        def runner(config, *, runs, processes):
            assert config.scenario == "urban"
            return fake_ab(config, [fake_run(attacked=False)],
                           [fake_run(attacked=True)])

        sweep = detect_sweep(runs=1, duration=10.0, runner=runner)
        assert len(sweep.cells) == 1
        assert sweep.cells[0].label == "urban/single/clean"


# ----------------------------------------------------------------------
# end-to-end (real simulations, small worlds)
# ----------------------------------------------------------------------
def detect_config(duration=20.0, seed=3, **overrides):
    config = ExperimentConfig.inter_area_default(duration=duration, seed=seed)
    config = config.with_(
        road=dataclasses.replace(config.road, length=1500.0),
        attack=dataclasses.replace(config.attack, attack_range=600.0),
        detection=DetectionConfig(enabled=True),
    )
    return config.with_(**overrides) if overrides else config


class TestEndToEnd:
    def test_default_runs_carry_no_detection_machinery(self):
        result = run_single(
            ExperimentConfig.inter_area_default(duration=10.0, seed=3),
            attacked=False,
        )
        assert not any(k.startswith("detect_") for k in result.extras)

    def test_clean_attack_free_run_raises_zero_alerts(self):
        result = run_single(detect_config(), attacked=False)
        assert result.extras["detect_alerts_total"] == 0.0
        assert result.extras["detect_windows_flagged"] == 0.0
        assert result.extras["detect_first_detection_s"] == -1.0
        assert result.extras["detect_windows_total"] > 0.0

    def test_attack_is_detected_and_quantified(self):
        result = run_single(detect_config(), attacked=True)
        assert result.extras["detect_first_detection_s"] > 0.0
        assert result.extras["detect_alerts_replayed_beacon"] > 0.0
        assert result.extras["detect_alerts_implausible_position"] > 0.0

    def test_impaired_attack_free_fp_rate_is_pinned_in_extras(self):
        # GPS error is the false-positive source: honest far beacons look
        # implausible.  The run must *quantify* the alerts while the
        # default threshold keeps every window unflagged.
        config = detect_config().with_(
            faults=FaultPlan(gps=GpsFaultPlan(error_stddev=8.0))
        )
        result = run_single(config, attacked=False)
        assert result.extras["detect_alerts_total"] > 0.0
        assert result.extras["detect_windows_flagged"] == 0.0
        assert result.extras["detect_first_detection_s"] == -1.0

    def test_batched_fleet_detectors_see_the_attack(self):
        # Satellite fix: with fleet_use_batched=True fleet beacons bypass
        # the radio handler; the bulk tap keeps the detectors observing.
        config = detect_config().with_(fleet_use_batched=True)
        attacked = run_single(config, attacked=True)
        assert attacked.extras["detect_alerts_total"] > 0.0
        assert attacked.extras["detect_first_detection_s"] > 0.0
        clean = run_single(config, attacked=False)
        assert clean.extras["detect_alerts_total"] == 0.0

    @pytest.mark.slow
    def test_adaptive_evades_where_static_is_caught(self):
        static = run_single(detect_config(duration=40.0), attacked=True)
        adaptive = run_single(
            detect_config(duration=40.0).with_(
                attack=dataclasses.replace(
                    detect_config().attack, variant="adaptive"
                )
            ),
            attacked=True,
        )
        assert static.extras["detect_first_detection_s"] > 0.0
        assert adaptive.extras["detect_first_detection_s"] == -1.0
        # ... at far lower replay spend but real interception impact.
        assert (
            adaptive.extras["replays_sent"]
            < static.extras["replays_sent"] / 10.0
        )


# ----------------------------------------------------------------------
# store-backed campaign target
# ----------------------------------------------------------------------
class TestCampaignTarget:
    @pytest.mark.slow
    @pytest.mark.parametrize("backend", ["json", "sqlite"])
    def test_detect_through_store_backed_campaign(
        self, monkeypatch, tmp_path, backend
    ):
        from repro.experiments.campaign import run_campaign
        from repro.experiments.store import open_store

        shrink(monkeypatch, variants=("single", "adaptive"))
        store = open_store(tmp_path / "results", backend=backend)
        report = run_campaign(
            ["detect"], store=store, runs=1, duration=10.0, seed=2,
            resume=True, log_stream=None,
        )
        assert report.ok
        assert report.executed == 4  # 2 cells x (af + atk)
        assert "detect:" in report.outputs["detect"]
        # Resume: the artefact reassembles from the store alone.
        again = run_campaign(
            ["detect"], store=store, runs=1, duration=10.0, seed=2,
            resume=True, log_stream=None,
        )
        assert again.executed == 0
        assert again.skipped == report.executed
        assert again.outputs["detect"] == report.outputs["detect"]
