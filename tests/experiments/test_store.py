"""Tests for the persistent result store."""

import dataclasses
import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import BinnedRates, PacketOutcome
from repro.experiments.runner import RunResult
from repro.experiments.store import (
    ResultStore,
    RunKey,
    StoreError,
    canonical_json,
    config_hash,
    run_result_from_dict,
    run_result_to_dict,
)


def sample_result(seed=7, attacked=True):
    return RunResult(
        seed=seed,
        attacked=attacked,
        binned=BinnedRates(bin_width=100.0, rates=[0.9125, None, 1 / 3]),
        overall_rate=0.7239583,
        n_packets=3,
        outcomes=[
            PacketOutcome(
                packet_id=(12, 3),
                send_time=1.5,
                source_x=250.0,
                direction=1,
                success=True,
                receivers=4,
                denominator=5,
                in_fully_covered_area=True,
                delivery_latency=0.0123,
            ),
            PacketOutcome(
                packet_id=(12, 4),
                send_time=2.5,
                source_x=260.0,
                direction=-1,
                success=False,
                receivers=0,
                denominator=5,
                in_fully_covered_area=False,
                delivery_latency=None,
            ),
        ],
        extras={"frames_sent": 123.0, "wall_time_s": 0.25},
    )


def key(target="figX", seed=7, attacked=True):
    return RunKey(target=target, config_hash="ab12", seed=seed, attacked=attacked)


# ----------------------------------------------------------------------
# serialisation
# ----------------------------------------------------------------------
def test_run_result_round_trip_is_exact():
    original = sample_result()
    rebuilt = run_result_from_dict(
        json.loads(json.dumps(run_result_to_dict(original)))
    )
    assert rebuilt == original  # floats round-trip bit-exactly through JSON


def test_config_hash_is_stable_and_content_addressed():
    config = ExperimentConfig.inter_area_default(duration=10.0, seed=3)
    same = ExperimentConfig.inter_area_default(duration=10.0, seed=3)
    other = config.with_(duration=11.0)
    assert config_hash(config) == config_hash(same)
    assert config_hash(config) != config_hash(other)
    assert len(config_hash(config)) == 16


def test_config_hash_covers_nested_dataclasses():
    config = ExperimentConfig.inter_area_default(duration=10.0, seed=3)
    tweaked = config.with_(
        road=dataclasses.replace(config.road, length=999.0)
    )
    assert config_hash(config) != config_hash(tweaked)


def test_canonical_json_sorts_keys():
    assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'


def test_jsonable_rejects_unserialisable():
    with pytest.raises(StoreError):
        canonical_json(object())


# ----------------------------------------------------------------------
# store behaviour
# ----------------------------------------------------------------------
def test_put_get_run(tmp_path):
    store = ResultStore(tmp_path)
    result = sample_result()
    store.put_run(key(), result)
    assert store.get_run(key()) == result
    assert store.has(key())


def test_get_run_missing_is_none(tmp_path):
    store = ResultStore(tmp_path)
    assert store.get_run(key()) is None
    assert not store.has(key())


def test_schema_mismatch_treated_as_absent(tmp_path):
    store = ResultStore(tmp_path)
    store.put_run(key(), sample_result())
    path = store.path_for(key())
    record = json.loads(path.read_text())
    record["schema"] = 999
    path.write_text(json.dumps(record))
    assert store.get_run(key()) is None
    assert not store.has(key())


def test_corrupt_record_treated_as_absent(tmp_path):
    store = ResultStore(tmp_path)
    store.put_run(key(), sample_result())
    store.path_for(key()).write_text("{truncated")
    assert store.get_run(key()) is None


# ----------------------------------------------------------------------
# quarantine of unparseable records
# ----------------------------------------------------------------------
def test_corrupt_record_is_quarantined_not_reread_forever(tmp_path):
    store = ResultStore(tmp_path)
    store.put_run(key(), sample_result())
    path = store.path_for(key())
    path.write_text("{truncated")
    assert store.get_record(key()) is None
    # evidence preserved under <name>.json.corrupt, original gone
    quarantined = path.with_name(path.name + ".corrupt")
    assert not path.exists()
    assert quarantined.read_text() == "{truncated"
    # the key now reads as absent everywhere: resume re-runs it
    assert not store.has(key())
    assert store.get_run(key()) is None
    assert list(store.iter_keys()) == []


def test_non_dict_record_is_quarantined(tmp_path):
    store = ResultStore(tmp_path)
    store.put_run(key(), sample_result())
    path = store.path_for(key())
    path.write_text("[1, 2, 3]")  # valid JSON, wrong shape
    assert store.get_record(key()) is None
    assert not path.exists()
    assert path.with_name(path.name + ".corrupt").exists()


def test_quarantined_key_is_rewritable(tmp_path):
    store = ResultStore(tmp_path)
    store.put_run(key(), sample_result())
    store.path_for(key()).write_text("garbage")
    assert not store.has(key())
    store.put_run(key(), sample_result())  # the re-run lands normally
    assert store.has(key())
    assert store.get_run(key()) == sample_result()


def test_missing_file_is_not_quarantined(tmp_path):
    store = ResultStore(tmp_path)
    assert store.get_record(key()) is None
    parent = store.path_for(key()).parent
    assert not parent.exists() or list(parent.iterdir()) == []


def test_schema_mismatch_is_not_quarantined(tmp_path):
    """An incompatible-but-valid record is evidence of a version skew, not
    corruption: it stays in place (absent to readers) for inspection."""
    store = ResultStore(tmp_path)
    store.put_run(key(), sample_result())
    path = store.path_for(key())
    record = json.loads(path.read_text())
    record["schema"] = 999
    path.write_text(json.dumps(record))
    assert store.get_record(key()) is None
    assert path.exists()
    assert not path.with_name(path.name + ".corrupt").exists()


def test_write_is_atomic_no_temp_left_behind(tmp_path):
    store = ResultStore(tmp_path)
    store.put_run(key(), sample_result())
    store.put_run(key(), sample_result(seed=7))  # overwrite in place
    leftovers = [p for p in store.path_for(key()).parent.iterdir()
                 if p.suffix == ".tmp"]
    assert leftovers == []


def test_text_records(tmp_path):
    store = ResultStore(tmp_path)
    k = key(target="table1", attacked=False)
    store.put_text(k, "rendered artefact", params={"seed": 1})
    assert store.get_text(k) == "rendered artefact"
    assert store.has(k)
    assert store.get_run(k) is None  # wrong kind


def test_failure_records_do_not_count_as_done(tmp_path):
    store = ResultStore(tmp_path)
    store.put_failure(key(), "worker crashed")
    assert store.get_failure(key()) == "worker crashed"
    assert not store.has(key())  # failures are retried on resume
    assert store.get_run(key()) is None


def test_success_overwrites_failure(tmp_path):
    store = ResultStore(tmp_path)
    store.put_failure(key(), "boom")
    store.put_run(key(), sample_result())
    assert store.has(key())
    assert store.get_failure(key()) is None


def test_iter_keys_and_count(tmp_path):
    store = ResultStore(tmp_path)
    keys = [
        key(target="a", seed=1, attacked=False),
        key(target="a", seed=1, attacked=True),
        key(target="b", seed=2, attacked=False),
    ]
    for k in keys:
        store.put_run(k, sample_result(seed=k.seed, attacked=k.attacked))
    assert set(store.iter_keys()) == set(keys)
    assert store.count() == 3


def test_invalid_target_name_rejected():
    with pytest.raises(StoreError):
        RunKey(target="../escape", config_hash="ab", seed=1, attacked=False)
    with pytest.raises(StoreError):
        RunKey(target="", config_hash="ab", seed=1, attacked=False)


# ----------------------------------------------------------------------
# drop breakdown (packet-lifecycle ledger)
# ----------------------------------------------------------------------
def test_drop_breakdown_round_trips():
    original = sample_result()
    original.drop_breakdown = {
        "delivered": 27,
        "unreachable-next-hop": 12,
    }
    rebuilt = run_result_from_dict(
        json.loads(json.dumps(run_result_to_dict(original)))
    )
    assert rebuilt == original
    assert rebuilt.drop_breakdown == original.drop_breakdown


def test_missing_drop_breakdown_reads_as_none():
    """Records written before the ledger existed have no key at all."""
    data = run_result_to_dict(sample_result())
    del data["drop_breakdown"]
    rebuilt = run_result_from_dict(json.loads(json.dumps(data)))
    assert rebuilt.drop_breakdown is None


def test_store_round_trips_drop_breakdown(tmp_path):
    store = ResultStore(tmp_path)
    result = sample_result()
    result.drop_breakdown = {"delivered": 3}
    store.put_run(key(), result)
    assert store.get_run(key()).drop_breakdown == {"delivered": 3}
