"""Preemption-safe resume in the campaign service (ISSUE acceptance).

A worker is SIGKILLed mid-run *after* its first interval checkpoint; the
successor that re-leases the job must adopt the checkpoint and resume
mid-run (never from t=0), the completed campaign's records must be
byte-identical to an uninterrupted baseline campaign, and completed runs
must garbage-collect their checkpoints.

The kill and resume points are observed through the module-level test
seams in :mod:`repro.experiments.checkpointing`
(``_post_checkpoint_hook`` / ``_on_resume_hook``), which worker
processes inherit across ``fork``.
"""

import json
import os
import signal

from repro.experiments import checkpointing
from repro.experiments.campaign import plan_campaign, run_campaign
from repro.experiments.service.scheduler import (
    WorkerSettings,
    run_service_campaign,
)
from repro.experiments.service.status import progress_snapshot
from repro.experiments.store import ResultStore, open_store

KW = dict(runs=1, duration=6.0, seed=1)
CHECKPOINT_INTERVAL = 2.0


def canonical(record):
    """Mask the wall-clock perf counters, then require bitwise identity
    (same idiom as ``test_crash_recovery``)."""
    extras = record["result"]["extras"]
    for counter in ("wall_time_s", "events_per_wall_sec"):
        assert counter in extras
        extras[counter] = 0.0
    return json.dumps(record, sort_keys=True)


def test_sigkilled_worker_resumes_from_checkpoint_bit_identically(
    tmp_path, monkeypatch
):
    # Uninterrupted baseline: plain single-process campaign, JSON store.
    json_store = ResultStore(tmp_path / "json")
    reference = run_campaign(
        ["fig7a"], store=json_store, resume=True, processes=1,
        log_stream=None, **KW,
    )
    assert reference.ok

    specs = plan_campaign(["fig7a"], **KW)
    crash_spec = next(s for s in specs if s.attacked)
    sentinel = tmp_path / "killed"
    resume_log = tmp_path / "resumes.log"

    def kill_after_first_checkpoint(key, sim_time):
        if (
            key.config_hash == crash_spec.key.config_hash
            and key.seed == crash_spec.key.seed
            and key.attacked
            and not sentinel.exists()
        ):
            sentinel.write_text(f"{sim_time}")
            os.kill(os.getpid(), signal.SIGKILL)

    def record_resume(key, sim_time):
        with open(resume_log, "a", encoding="utf-8") as handle:
            handle.write(f"{key.filename}:{sim_time}\n")

    monkeypatch.setattr(
        checkpointing, "_post_checkpoint_hook", kill_after_first_checkpoint
    )
    monkeypatch.setattr(checkpointing, "_on_resume_hook", record_resume)

    sqlite_store = open_store(tmp_path / "sqlite", backend="sqlite")
    report = run_service_campaign(
        ["fig7a"],
        store=sqlite_store,
        workers=2,
        checkpoint_interval=CHECKPOINT_INTERVAL,
        settings=WorkerSettings(
            lease_ttl=2.0, heartbeat_interval=0.5, poll_interval=0.05
        ),
        log_stream=None,
        **KW,
    )
    assert sentinel.exists(), "the worker was never killed"
    assert report.ok
    assert report.executed == len(specs)

    # The successor adopted the checkpoint: it resumed from the killed
    # worker's last saved sim time, so the re-simulated span is bounded
    # by one checkpoint interval — never the whole run.
    killed_at = float(sentinel.read_text())
    assert killed_at >= CHECKPOINT_INTERVAL
    resumes = [
        float(line.rsplit(":", 1)[1])
        for line in resume_log.read_text().splitlines()
    ]
    assert resumes, "the successor restarted from scratch, not a checkpoint"
    assert killed_at in resumes
    assert all(t > 0.0 for t in resumes)

    # Byte-identical records vs the uninterrupted baseline.
    json_keys = sorted(
        json_store.iter_keys(),
        key=lambda k: (k.target, k.config_hash, k.seed, k.attacked),
    )
    sqlite_keys = sorted(
        sqlite_store.iter_keys(),
        key=lambda k: (k.target, k.config_hash, k.seed, k.attacked),
    )
    assert json_keys == sqlite_keys and len(json_keys) == len(specs)
    for k in json_keys:
        assert canonical(json_store.get_record(k)) == canonical(
            sqlite_store.get_record(k)
        )
    assert report.outputs["fig7a"] == reference.outputs["fig7a"]

    # Completed runs garbage-collect their checkpoints; nothing was
    # quarantined along the way.
    for spec in specs:
        assert sqlite_store.checkpoint_sim_time(spec.key) is None
    assert sqlite_store.checkpoint_quarantine_count() == 0

    # And the status surface reports the finished campaign cleanly.
    snapshot = progress_snapshot(sqlite_store, specs)
    assert snapshot["percent"] == 100.0
    assert snapshot["jobs"] == []
    assert snapshot["checkpoints_quarantined"] == 0
