"""Tests for the campaign service layer: worker loop, scheduler,
status endpoint, partial assembly, and the CLI's scheduler surface.

Crash recovery (SIGKILL mid-run / mid-commit) lives in
``test_crash_recovery.py``; the lease protocol's exhaustive invariants
in ``tests/properties/test_lease_properties.py``.  This module covers
the orderly paths and the wiring around them.
"""

import argparse
import io
import json
import urllib.request

import pytest

from repro.experiments import campaign, cli
from repro.experiments.campaign import MissingRunError, assemble_target, plan_campaign
from repro.experiments.service.leases import job_id_for, queue_for_store
from repro.experiments.service.scheduler import (
    WorkerSettings,
    run_service_campaign,
    worker_loop,
)
from repro.experiments.service.status import StatusServer, progress_snapshot
from repro.experiments.store import open_store
from tests.experiments.test_campaign import (
    KW,
    executed_keys,
    fake_result,
    recording_execute,
)

FAST = WorkerSettings(lease_ttl=5.0, heartbeat_interval=0.5, poll_interval=0.05)


@pytest.fixture(params=["json", "sqlite"])
def store(request, tmp_path):
    return open_store(tmp_path / "results", backend=request.param)


# ----------------------------------------------------------------------
# WorkerSettings
# ----------------------------------------------------------------------
def test_worker_settings_validation():
    with pytest.raises(ValueError):
        WorkerSettings(lease_ttl=0.0)
    with pytest.raises(ValueError):
        WorkerSettings(max_attempts=0)
    with pytest.raises(ValueError):
        WorkerSettings(lease_ttl=10.0, heartbeat_interval=10.0)
    with pytest.raises(ValueError):
        WorkerSettings(lease_ttl=10.0, heartbeat_interval=-1.0)
    assert WorkerSettings(lease_ttl=9.0).effective_heartbeat == 3.0
    assert WorkerSettings(lease_ttl=9.0, heartbeat_interval=1.5).effective_heartbeat == 1.5


# ----------------------------------------------------------------------
# worker_loop (in-process)
# ----------------------------------------------------------------------
def test_worker_loop_drains_the_queue(store, tmp_path, monkeypatch):
    log_path = str(tmp_path / "executed.log")
    monkeypatch.setattr(campaign, "execute_spec", recording_execute(log_path))
    specs = plan_campaign(["fig7a"], **KW)
    specs_by_job = {job_id_for(s.key): s for s in specs}
    queue = queue_for_store(store)
    queue.seed(specs_by_job)
    completed = worker_loop("w1", store, queue, specs_by_job, FAST)
    assert completed == len(specs)
    assert queue.all_terminal()
    assert queue.counts()["done"] == len(specs)
    for spec in specs:
        assert store.has(spec.key), spec.describe()
    assert len(executed_keys(log_path)) == len(specs)


def test_worker_loop_fails_unknown_jobs(store):
    queue = queue_for_store(store)
    queue.seed(["not-a-planned-job"])
    completed = worker_loop("w1", store, queue, {}, FAST)
    assert completed == 0
    assert queue.counts()["failed"] == 1
    assert "unknown" in queue.errors()["not-a-planned-job"]


def test_worker_loop_retries_then_records_terminal_failure(
    store, monkeypatch
):
    attempts = []

    def always_raise(spec):
        attempts.append(spec.key)
        raise ValueError("deterministic failure")

    monkeypatch.setattr(campaign, "execute_spec", always_raise)
    specs = plan_campaign(["fig12a"], **KW)
    specs_by_job = {job_id_for(s.key): s for s in specs}
    queue = queue_for_store(store, max_attempts=2)
    queue.seed(specs_by_job)
    settings = WorkerSettings(
        lease_ttl=5.0, poll_interval=0.05, max_attempts=2
    )
    completed = worker_loop("w1", store, queue, specs_by_job, settings)
    assert completed == 0
    assert len(attempts) == 2  # max_attempts, then terminal
    assert queue.counts()["failed"] == 1
    assert store.get_failure(specs[0].key) is not None
    assert not store.has(specs[0].key)


# ----------------------------------------------------------------------
# run_service_campaign (multi-process, orderly)
# ----------------------------------------------------------------------
def test_service_campaign_completes_and_resumes(store, tmp_path, monkeypatch):
    log_path = str(tmp_path / "executed.log")
    monkeypatch.setattr(campaign, "execute_spec", recording_execute(log_path))
    specs = plan_campaign(["fig7a", "fig12a"], **KW)
    report = run_service_campaign(
        ["fig7a", "fig12a"], store=store, workers=2, settings=FAST,
        log_stream=None, **KW,
    )
    assert report.ok
    assert report.planned == len(specs)
    assert report.executed == len(specs)
    assert report.skipped == 0
    assert report.workers == 2
    assert set(report.outputs) == {"fig7a", "fig12a"}
    assert len(executed_keys(log_path)) == len(specs)
    # re-issue: the service always resumes — nothing executes again
    report2 = run_service_campaign(
        ["fig7a", "fig12a"], store=store, workers=2, settings=FAST,
        log_stream=None, **KW,
    )
    assert report2.ok
    assert report2.skipped == len(specs)
    assert report2.executed == 0
    assert len(executed_keys(log_path)) == len(specs)


def test_service_campaign_rejects_bad_workers(store):
    with pytest.raises(ValueError):
        run_service_campaign(["fig12a"], store=store, workers=0, **KW)


def test_service_campaign_partial_renders_with_coverage_note(
    store, monkeypatch
):
    """With ``partial``, a target whose runs keep failing still renders
    from the stored subset, flagged with a coverage note."""
    specs = plan_campaign(["fig7a"], **KW)
    bad_key = next(s for s in specs if s.attacked).key

    def flaky(spec):
        if spec.key == bad_key:
            raise ValueError("this run never succeeds")
        return fake_result(spec)

    monkeypatch.setattr(campaign, "execute_spec", flaky)
    report = run_service_campaign(
        ["fig7a"], store=store, workers=1, retries=0, partial=True,
        settings=WorkerSettings(
            lease_ttl=5.0, poll_interval=0.05, max_attempts=1
        ),
        log_stream=None, **KW,
    )
    assert not report.ok  # the failure is still reported...
    assert [s.key for s, _ in report.failed] == [bad_key]
    # ...but the artefact rendered from what is stored, with the note
    assert "fig7a" in report.outputs
    assert report.partial_targets["fig7a"].startswith("partial:")
    assert "note: partial:" in report.outputs["fig7a"]
    assert "fig7a" not in report.errors


def test_pool_campaign_partial_renders_with_coverage_note(store, monkeypatch):
    """`--partial` works identically on the classic pool path: a target
    with a terminally-failing run renders from the stored subset with the
    same coverage note the lease scheduler produces."""
    specs = plan_campaign(["fig7a"], **KW)
    bad_key = next(s for s in specs if s.attacked).key

    def flaky(spec):
        if spec.key == bad_key:
            raise ValueError("this run never succeeds")
        return fake_result(spec)

    monkeypatch.setattr(campaign, "execute_spec", flaky)
    report = campaign.run_campaign(
        ["fig7a"], store=store, processes=1, retries=0, partial=True,
        log_stream=None, **KW,
    )
    assert not report.ok
    assert [s.key for s, _ in report.failed] == [bad_key]
    assert "fig7a" in report.outputs
    assert report.partial_targets["fig7a"].startswith("partial:")
    assert "note: partial:" in report.outputs["fig7a"]
    assert "fig7a" not in report.errors


# ----------------------------------------------------------------------
# partial assembly (streaming aggregation)
# ----------------------------------------------------------------------
def test_assemble_partial_keeps_only_complete_seed_pairs(store):
    specs = plan_campaign(["fig7a"], **KW)
    # store everything except one attacked run: its A-side twin must be
    # excluded too (a lone attack-free run would bias the comparison)
    missing = next(s for s in specs if s.attacked)
    for spec in specs:
        if spec.key != missing.key:
            campaign._store_result(store, spec, fake_result(spec))
    with pytest.raises(MissingRunError):
        assemble_target("fig7a", store, partial=False, **KW)
    text, note = assemble_target("fig7a", store, partial=True, **KW)
    stored, planned = len(specs) - 1, len(specs)
    assert note == f"partial: {stored}/{planned} runs stored (83%)"
    assert f"note: {note}" in text


def test_assemble_partial_with_zero_runs_still_raises(store):
    with pytest.raises(MissingRunError):
        assemble_target("fig7a", store, partial=True, **KW)


def test_assemble_partial_complete_store_reports_complete(store):
    for spec in plan_campaign(["fig7a"], **KW):
        campaign._store_result(store, spec, fake_result(spec))
    text, note = assemble_target("fig7a", store, partial=True, **KW)
    assert note == "complete"
    assert "note:" not in text
    assert text == assemble_target("fig7a", store, partial=False, **KW)


# ----------------------------------------------------------------------
# status snapshot + HTTP endpoint
# ----------------------------------------------------------------------
def test_progress_snapshot_counts(store):
    specs = plan_campaign(["fig7a"], **KW)
    half = specs[: len(specs) // 2]
    for spec in half:
        campaign._store_result(store, spec, fake_result(spec))
    store.put_failure(specs[-1].key, "boom")
    snapshot = progress_snapshot(store, specs)
    assert snapshot["planned"] == len(specs)
    assert snapshot["stored"] == len(half)
    assert snapshot["failures"] == 1
    assert snapshot["remaining"] == len(specs) - len(half)
    assert snapshot["quarantined"] == 0
    assert store.describe() == snapshot["backend"]
    queue = queue_for_store(store)
    queue.seed([job_id_for(s.key) for s in specs])
    with_queue = progress_snapshot(store, specs, queue=queue)
    assert with_queue["queue"]["pending"] == len(specs)
    assert with_queue["workers_active"] == 0


def test_status_server_serves_snapshot_and_health(store):
    specs = plan_campaign(["fig12a"], **KW)
    server = StatusServer(lambda: progress_snapshot(store, specs), port=0)
    with server:
        base = f"http://127.0.0.1:{server.port}"
        with urllib.request.urlopen(f"{base}/status", timeout=5) as response:
            assert response.status == 200
            body = json.loads(response.read())
        assert body["planned"] == 1 and body["stored"] == 0
        with urllib.request.urlopen(f"{base}/healthz", timeout=5) as response:
            assert response.read() == b"ok\n"
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(f"{base}/nope", timeout=5)
        assert exc_info.value.code == 404


# ----------------------------------------------------------------------
# CLI: scheduler flags are warned about and validated consistently
# ----------------------------------------------------------------------
def _args(**overrides):
    defaults = dict(
        runs=3, processes=1, duration=200.0, seed=1,
        workers=0, lease_ttl=60.0, heartbeat=None, status_port=None,
        partial=False,
    )
    defaults.update(overrides)
    return argparse.Namespace(**defaults)


def test_single_run_target_warns_on_scheduler_flags(capsys):
    """The satellite fix: scheduler flags on a single deterministic run
    warn exactly like the historical --runs/--processes instead of being
    silently swallowed."""
    cli._warn_ignored_flags("table1", _args(workers=4, lease_ttl=5.0))
    err = capsys.readouterr().err
    assert "--workers 4" in err and "--lease-ttl 5.0" in err
    assert "no effect" in err
    # and still nothing when every fan-out flag is at its default
    cli._warn_ignored_flags("table1", _args())
    assert capsys.readouterr().err == ""
    # multi-run targets accept the flags silently (they do apply)
    cli._warn_ignored_flags("fig7a", _args(workers=4))
    assert capsys.readouterr().err == ""


def test_scheduler_flags_without_workers_warn(capsys):
    cli._validate_scheduler_args(_args(lease_ttl=5.0, status_port=0))
    err = capsys.readouterr().err
    assert "--lease-ttl 5.0" in err and "--status-port 0" in err
    assert "--workers" in err
    cli._validate_scheduler_args(_args(workers=2, lease_ttl=5.0))
    assert capsys.readouterr().err == ""


def test_scheduler_flag_ranges_are_validated():
    with pytest.raises(SystemExit):
        cli._validate_scheduler_args(_args(workers=-1))
    with pytest.raises(SystemExit):
        cli._validate_scheduler_args(_args(lease_ttl=0.0))
    with pytest.raises(SystemExit):
        cli._validate_scheduler_args(_args(workers=2, lease_ttl=10.0, heartbeat=10.0))
    with pytest.raises(SystemExit):
        cli._validate_scheduler_args(_args(status_port=70000))


def test_cli_campaign_via_lease_scheduler(tmp_path, monkeypatch, capsys):
    monkeypatch.setattr(
        campaign, "execute_spec", recording_execute(str(tmp_path / "log"))
    )
    code = cli.main(
        [
            "campaign", "fig12a",
            "--backend", "sqlite",
            "--workers", "1",
            "--results-dir", str(tmp_path / "results"),
            "--runs", "1", "--duration", "6.0",
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "text artefact for fig12a" in captured.out
    store = open_store(tmp_path / "results", backend="sqlite")
    assert store.count() == 1


def test_cli_status_reports_progress(tmp_path, monkeypatch, capsys):
    store = open_store(tmp_path / "results", backend="json")
    specs = plan_campaign(["fig12a"], **KW)
    store.put_text(specs[0].key, "artefact")
    code = cli.main(
        [
            "status", "fig12a",
            "--results-dir", str(tmp_path / "results"),
            "--runs", "1", "--duration", "6.0",
        ]
    )
    assert code == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert snapshot["planned"] == 1
    assert snapshot["stored"] == 1
    assert snapshot["percent"] == 100.0
