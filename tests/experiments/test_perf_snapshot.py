"""Tests for the PerfSnapshot performance reporting helper."""

import dataclasses

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import PerfSnapshot
from repro.experiments.runner import RunResult, run_single
from repro.experiments.world import World
from repro.experiments.metrics import BinnedRates


def tiny_config():
    config = ExperimentConfig.intra_area_default(duration=6.0, seed=2)
    return config.with_(road=dataclasses.replace(config.road, length=1000.0))


def test_from_world_captures_live_counters():
    world = World(tiny_config(), attacked=False)
    world.run()
    snap = PerfSnapshot.from_world(world)
    assert snap.events_fired == world.sim.events_fired > 0
    assert snap.wall_time_s > 0.0
    assert snap.frames_sent == world.channel.stats.frames_sent > 0
    assert snap.events_per_sec > 0.0
    assert snap.transmits_per_sec > 0.0
    assert snap.mean_receivers_per_frame > 0.0
    assert snap.mean_candidates_per_frame >= snap.mean_receivers_per_frame


def test_from_run_round_trips_extras():
    run = run_single(tiny_config(), attacked=False)
    snap = PerfSnapshot.from_run(run)
    assert snap.events_fired == int(run.extras["events_fired"]) > 0
    assert snap.wall_time_s == run.extras["wall_time_s"] > 0.0
    assert snap.frames_sent == int(run.extras["frames_sent"])
    assert snap.mean_receivers_per_frame == (
        run.extras["mean_receivers_per_frame"]
    )


def test_from_run_tolerates_missing_extras():
    run = RunResult(
        seed=1,
        attacked=False,
        binned=BinnedRates(bin_width=5.0, rates=[]),
        overall_rate=0.0,
        n_packets=0,
        outcomes=[],
        extras={},
    )
    snap = PerfSnapshot.from_run(run)
    assert snap.events_fired == 0
    assert snap.events_per_sec == 0.0
    assert snap.transmits_per_sec == 0.0


def test_format_is_one_line_with_rates():
    snap = PerfSnapshot(
        events_fired=1000,
        wall_time_s=0.5,
        frames_sent=100,
        frames_delivered=900,
        mean_receivers_per_frame=9.0,
        mean_candidates_per_frame=12.5,
    )
    text = snap.format()
    assert "\n" not in text
    assert "2,000 ev/s" in text
    assert "200 tx/s" in text
    assert "rx/frame=9.0" in text
    assert "candidates/frame=12.5" in text
