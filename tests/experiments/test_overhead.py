"""Tests for the mitigation overhead model."""


from repro.experiments.overhead import MitigationCost, analyse, format_analysis
from repro.radio.channel import ChannelStats
from repro.radio.frames import FrameKind


def make_stats(beacons_sent=100, beacons_delivered=3000, unicasts=50):
    stats = ChannelStats()
    stats.frames_sent = beacons_sent + unicasts
    stats.sent_by_kind = {
        FrameKind.BEACON: beacons_sent,
        FrameKind.GEO_UNICAST: unicasts,
    }
    stats.delivered_by_kind = {FrameKind.BEACON: beacons_delivered}
    return stats


def test_analyse_returns_three_options():
    costs = analyse(make_stats(), duration=200.0)
    assert set(costs) == {"encrypt beacons", "per-hop ACKs", "plausibility check"}


def test_plausibility_check_is_free():
    costs = analyse(make_stats(), duration=200.0)
    check = costs["plausibility check"]
    assert check.extra_bytes_on_air == 0
    assert check.extra_crypto_ms == 0
    assert check.extra_frames == 0


def test_encryption_cost_scales_with_receivers():
    sparse = analyse(make_stats(beacons_delivered=100), duration=200.0)
    dense = analyse(make_stats(beacons_delivered=10000), duration=200.0)
    assert (
        dense["encrypt beacons"].extra_crypto_ms
        > sparse["encrypt beacons"].extra_crypto_ms
    )


def test_ack_cost_scales_with_forwards():
    few = analyse(make_stats(unicasts=10), duration=200.0)
    many = analyse(make_stats(unicasts=1000), duration=200.0)
    assert many["per-hop ACKs"].extra_frames > few["per-hop ACKs"].extra_frames
    assert (
        many["per-hop ACKs"].extra_bytes_on_air
        > few["per-hop ACKs"].extra_bytes_on_air
    )


def test_format_analysis_readable():
    text = format_analysis(make_stats(), duration=200.0)
    assert "encrypt beacons" in text
    assert "plausibility check" in text
    assert "zero channel and crypto overhead" in text


def test_analysis_on_real_run():
    import dataclasses

    from repro.experiments import ExperimentConfig
    from repro.experiments.world import World

    config = ExperimentConfig.inter_area_default(duration=10.0)
    config = config.with_(road=dataclasses.replace(config.road, length=1200.0))
    world = World(config, attacked=False, seed=2)
    world.run()
    costs = analyse(world.channel.stats, duration=10.0)
    assert costs["encrypt beacons"].extra_crypto_ms > 0
    assert costs["per-hop ACKs"].extra_frames > 0


def test_row_formatting():
    cost = MitigationCost(
        name="x", extra_bytes_on_air=2048.0, extra_crypto_ms=10.0,
        extra_frames=5, notes="n",
    )
    assert "2.0 KiB" in cost.row()
