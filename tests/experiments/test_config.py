"""Tests for experiment configuration."""

import dataclasses

import pytest

from repro.experiments.config import (
    AttackConfig,
    AttackKind,
    ExperimentConfig,
    RoadConfig,
    WorkloadConfig,
    WorkloadKind,
)
from repro.radio.technology import CV2X, DSRC, RangeClass


def test_inter_area_default_matches_paper():
    config = ExperimentConfig.inter_area_default()
    assert config.technology is DSRC
    assert config.road.length == 4000.0
    assert config.road.inter_vehicle_space == 30.0
    assert config.road.directions == 1
    assert config.geonet.loct_ttl == 20.0
    assert config.duration == 200.0
    assert config.bin_width == 5.0
    assert config.attack.kind is AttackKind.INTER_AREA
    assert config.attack.attack_range == DSRC.nlos_worst_m
    assert config.workload.kind is WorkloadKind.INTER_AREA


def test_intra_area_default_matches_paper():
    config = ExperimentConfig.intra_area_default()
    assert config.attack.kind is AttackKind.INTRA_AREA
    assert config.attack.attack_range == DSRC.nlos_median_m
    assert config.workload.kind is WorkloadKind.INTRA_AREA
    assert config.geonet.default_rhl == 10


def test_inter_area_hop_budget_covers_the_road():
    config = ExperimentConfig.inter_area_default()
    hops_available = config.geonet.default_rhl
    hops_needed = config.road.length / config.vehicle_range
    assert hops_available > hops_needed + 2


def test_vehicle_range_is_technology_nlos_median():
    assert ExperimentConfig.inter_area_default().vehicle_range == 486.0
    assert (
        ExperimentConfig.inter_area_default(technology=CV2X).vehicle_range == 593.0
    )


def test_attacker_defaults_to_road_middle():
    config = ExperimentConfig.inter_area_default()
    assert config.attacker_x == 2000.0


def test_attacker_x_override():
    config = ExperimentConfig.inter_area_default()
    config = config.with_(attack=dataclasses.replace(config.attack, x=500.0))
    assert config.attacker_x == 500.0


def test_n_bins():
    assert ExperimentConfig.inter_area_default().n_bins == 40
    assert ExperimentConfig.inter_area_default(duration=12.0).n_bins == 3


def test_attack_range_for():
    config = ExperimentConfig.inter_area_default()
    assert config.attack_range_for(RangeClass.LOS_MEDIAN) == 1283.0


def test_with_overrides():
    config = ExperimentConfig.inter_area_default(duration=60.0, seed=9)
    assert config.duration == 60.0
    assert config.seed == 9


def test_invalid_values_rejected():
    with pytest.raises(ValueError):
        RoadConfig(inter_vehicle_space=0)
    with pytest.raises(ValueError):
        AttackConfig(attack_range=0)
    with pytest.raises(ValueError):
        WorkloadConfig(packet_interval=0)
    with pytest.raises(ValueError):
        ExperimentConfig(duration=0)


def test_configs_are_frozen():
    config = ExperimentConfig.inter_area_default()
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.duration = 100.0


def test_configs_are_picklable():
    import pickle

    config = ExperimentConfig.intra_area_default()
    assert pickle.loads(pickle.dumps(config)) == config
