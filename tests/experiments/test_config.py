"""Tests for experiment configuration."""

import dataclasses

import pytest

from repro.experiments.config import (
    AttackConfig,
    AttackKind,
    ExperimentConfig,
    RoadConfig,
    WorkloadConfig,
    WorkloadKind,
)
from repro.radio.technology import CV2X, DSRC, RangeClass


def test_inter_area_default_matches_paper():
    config = ExperimentConfig.inter_area_default()
    assert config.technology is DSRC
    assert config.road.length == 4000.0
    assert config.road.inter_vehicle_space == 30.0
    assert config.road.directions == 1
    assert config.geonet.loct_ttl == 20.0
    assert config.duration == 200.0
    assert config.bin_width == 5.0
    assert config.attack.kind is AttackKind.INTER_AREA
    assert config.attack.attack_range == DSRC.nlos_worst_m
    assert config.workload.kind is WorkloadKind.INTER_AREA


def test_intra_area_default_matches_paper():
    config = ExperimentConfig.intra_area_default()
    assert config.attack.kind is AttackKind.INTRA_AREA
    assert config.attack.attack_range == DSRC.nlos_median_m
    assert config.workload.kind is WorkloadKind.INTRA_AREA
    assert config.geonet.default_rhl == 10


def test_inter_area_hop_budget_covers_the_road():
    config = ExperimentConfig.inter_area_default()
    hops_available = config.geonet.default_rhl
    hops_needed = config.road.length / config.vehicle_range
    assert hops_available > hops_needed + 2


def test_vehicle_range_is_technology_nlos_median():
    assert ExperimentConfig.inter_area_default().vehicle_range == 486.0
    assert (
        ExperimentConfig.inter_area_default(technology=CV2X).vehicle_range == 593.0
    )


def test_attacker_defaults_to_road_middle():
    config = ExperimentConfig.inter_area_default()
    assert config.attacker_x == 2000.0


def test_attacker_x_override():
    config = ExperimentConfig.inter_area_default()
    config = config.with_(attack=dataclasses.replace(config.attack, x=500.0))
    assert config.attacker_x == 500.0


def test_n_bins():
    assert ExperimentConfig.inter_area_default().n_bins == 40
    assert ExperimentConfig.inter_area_default(duration=12.0).n_bins == 3


def test_attack_range_for():
    config = ExperimentConfig.inter_area_default()
    assert config.attack_range_for(RangeClass.LOS_MEDIAN) == 1283.0


def test_with_overrides():
    config = ExperimentConfig.inter_area_default(duration=60.0, seed=9)
    assert config.duration == 60.0
    assert config.seed == 9


def test_invalid_values_rejected():
    with pytest.raises(ValueError):
        RoadConfig(inter_vehicle_space=0)
    with pytest.raises(ValueError):
        AttackConfig(attack_range=0)
    with pytest.raises(ValueError):
        WorkloadConfig(packet_interval=0)
    with pytest.raises(ValueError):
        ExperimentConfig(duration=0)


@pytest.mark.parametrize(
    "build, message",
    [
        (lambda: RoadConfig(length=0.0), "road.length"),
        (lambda: RoadConfig(lanes_per_direction=0), "road.lanes_per_direction"),
        (lambda: RoadConfig(directions=3), "road.directions"),
        (lambda: RoadConfig(inter_vehicle_space=-1.0), "road.inter_vehicle_space"),
        (lambda: RoadConfig(entry_speed=0.0), "road.entry_speed"),
        (lambda: AttackConfig(attack_range=-5.0), "attack.attack_range"),
        (lambda: AttackConfig(reaction_delay=-0.1), "attack.reaction_delay"),
        (lambda: AttackConfig(replay_range=0.0), "attack.replay_range"),
        (lambda: WorkloadConfig(packet_interval=0.0), "workload.packet_interval"),
        (lambda: WorkloadConfig(dest_offset=-1.0), "workload.dest_offset"),
        (lambda: WorkloadConfig(dest_radius=0.0), "workload.dest_radius"),
        (
            lambda: WorkloadConfig(source_xmin=100.0, source_xmax=50.0),
            "workload.source_xmax",
        ),
        (lambda: ExperimentConfig(duration=-1.0), "duration"),
        (lambda: ExperimentConfig(bin_width=0.0), "bin_width"),
        (lambda: ExperimentConfig(mobility_dt=0.0), "mobility_dt"),
        (lambda: ExperimentConfig(channel_loss_rate=1.0), "channel_loss_rate"),
        (
            lambda: ExperimentConfig(invariant_check_interval=0.0),
            "invariant_check_interval",
        ),
    ],
)
def test_validation_names_the_offending_field(build, message):
    """Every rejection is a ConfigError whose text names the bad field."""
    from repro.errors import ConfigError

    with pytest.raises(ConfigError, match=message.replace(".", r"\.")):
        build()


def test_fault_plan_rides_in_the_config():
    from repro.faults import FaultPlan

    config = ExperimentConfig.inter_area_default()
    assert config.faults.is_zero  # the default plan injects nothing
    faulted = config.with_(faults=FaultPlan.lossy(0.05))
    assert faulted.faults.link.loss_rate == 0.05
    assert faulted != config


def test_invariant_check_interval_defaults_off():
    config = ExperimentConfig.inter_area_default()
    assert config.invariant_check_interval is None
    timed = config.with_(invariant_check_interval=2.0)
    assert timed.invariant_check_interval == 2.0


def test_configs_are_frozen():
    config = ExperimentConfig.inter_area_default()
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.duration = 100.0


def test_configs_are_picklable():
    import pickle

    config = ExperimentConfig.intra_area_default()
    assert pickle.loads(pickle.dumps(config)) == config
