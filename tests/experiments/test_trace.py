"""Tests for the channel tracer."""

import pytest

from repro.analysis.trace import ChannelTracer
from repro.geo.areas import CircularArea
from repro.geo.position import Position
from repro.radio.frames import FrameKind


def test_tracer_records_beacons(testbed):
    tracer = ChannelTracer(testbed.channel)
    testbed.add_node(0.0)
    testbed.add_node(100.0)
    testbed.warm_up(7.0)
    counts = tracer.counts()
    assert counts[FrameKind.BEACON] >= 4


def test_tracer_records_unicast_forwards(testbed):
    a = testbed.add_node(0.0)
    testbed.add_node(400.0)
    testbed.add_node(800.0)
    tracer = ChannelTracer(testbed.channel)
    testbed.warm_up()
    a.originate(CircularArea(Position(800.0, 0.0), 30.0), "traced")
    testbed.sim.run_until(testbed.sim.now + 1.0)
    unicasts = list(tracer.filter(kind=FrameKind.GEO_UNICAST))
    assert len(unicasts) >= 1
    assert unicasts[0].payload_type == "GeoBroadcastPacket"
    assert unicasts[0].dest_addr is not None


def test_tracer_does_not_change_delivery(testbed):
    a = testbed.add_node(0.0)
    b = testbed.add_node(100.0)
    ChannelTracer(testbed.channel)
    testbed.warm_up()
    assert a.address in b.router.loct


def test_filter_by_sender_and_time(testbed):
    a = testbed.add_node(0.0)
    testbed.add_node(100.0)
    tracer = ChannelTracer(testbed.channel)
    testbed.warm_up(10.0)
    mine = list(tracer.filter(sender_addr=a.address))
    assert mine
    assert all(r.sender_addr == a.address for r in mine)
    late = list(tracer.filter(since=5.0))
    assert all(r.time >= 5.0 for r in late)


def test_record_cap_counts_drops(testbed):
    tracer = ChannelTracer(testbed.channel, max_records=3)
    testbed.add_node(0.0)
    testbed.add_node(100.0)
    testbed.warm_up(20.0)
    assert len(tracer.records) == 3
    assert tracer.dropped > 0


def test_detach_restores_channel(testbed):
    tracer = ChannelTracer(testbed.channel)
    tracer.detach()
    testbed.add_node(0.0)
    testbed.add_node(100.0)
    testbed.warm_up(5.0)
    assert tracer.records == []
    tracer.detach()  # idempotent


def test_to_text_renders_lines(testbed):
    tracer = ChannelTracer(testbed.channel)
    testbed.add_node(0.0)
    testbed.add_node(100.0)
    testbed.warm_up(5.0)
    text = tracer.to_text(limit=2)
    assert "beacon" in text
    assert "->" in text


def test_to_text_empty(testbed):
    tracer = ChannelTracer(testbed.channel)
    assert tracer.to_text() == "(no matching records)"


def test_invalid_cap_rejected(testbed):
    with pytest.raises(ValueError):
        ChannelTracer(testbed.channel, max_records=0)


def test_records_carry_packet_ids(testbed):
    a = testbed.add_node(0.0)
    testbed.add_node(400.0)
    testbed.add_node(800.0)
    tracer = ChannelTracer(testbed.channel)
    testbed.warm_up()
    pid = a.originate(CircularArea(Position(800.0, 0.0), 30.0), "traced")
    testbed.sim.run_until(testbed.sim.now + 1.0)
    mine = list(tracer.filter(packet_id=pid))
    assert mine
    assert all(r.packet_id == pid for r in mine)
    assert "id=" in mine[0].line()
    # beacons have no packet id
    beacons = list(tracer.filter(kind=FrameKind.BEACON))
    assert all(r.packet_id is None for r in beacons)


def test_journey_merges_ledger_and_radio_views(testbed):
    from repro.observability import PacketLedger

    ledger = PacketLedger(journeys=True)
    a = testbed.add_node(0.0, ledger=ledger)
    testbed.add_node(400.0, ledger=ledger)
    testbed.add_node(800.0, ledger=ledger)
    tracer = ChannelTracer(testbed.channel)
    testbed.warm_up()
    pid = a.originate(CircularArea(Position(800.0, 0.0), 30.0), "journeyed")
    testbed.sim.run_until(testbed.sim.now + 1.0)
    text = tracer.journey(ledger, "gbc", pid)
    assert "[node ]" in text and "[radio]" in text
    assert "originated" in text
    times = []
    for line in text.splitlines():
        times.append(float(line.split("s", 1)[0].split("]")[-1].strip()))
    assert times == sorted(times)


def test_journey_of_unknown_packet(testbed):
    from repro.observability import PacketLedger

    tracer = ChannelTracer(testbed.channel)
    text = tracer.journey(PacketLedger(journeys=True), "gbc", (1, 2))
    assert text == "(no journey recorded for this packet)"
