"""Tests for the A/B runner."""

import dataclasses

import pytest

from repro.experiments.config import AttackKind, ExperimentConfig
from repro.experiments.runner import run_ab, run_single


def tiny_config(kind="intra"):
    factory = (
        ExperimentConfig.intra_area_default
        if kind == "intra"
        else ExperimentConfig.inter_area_default
    )
    config = factory(duration=8.0, seed=11)
    return config.with_(road=dataclasses.replace(config.road, length=1200.0))


def test_run_single_produces_metrics():
    result = run_single(tiny_config(), attacked=False)
    assert result.n_packets > 0
    assert 0.0 <= result.overall_rate <= 1.0
    assert result.binned.n_bins == 2
    assert result.extras["frames_sent"] > 0


def test_run_single_attacked_reports_attacker_extras():
    result = run_single(tiny_config(), attacked=True)
    assert "replays_sent" in result.extras
    assert "frames_sniffed" in result.extras


def test_run_ab_pairs_seeds():
    ab = run_ab(tiny_config(), runs=2)
    assert len(ab.af_runs) == 2
    assert len(ab.atk_runs) == 2
    assert [r.seed for r in ab.af_runs] == [r.seed for r in ab.atk_runs]


def test_run_ab_skips_attacked_runs_when_attack_none():
    config = tiny_config()
    config = config.with_(
        attack=dataclasses.replace(config.attack, kind=AttackKind.NONE)
    )
    ab = run_ab(config, runs=2)
    assert len(ab.af_runs) == 2
    assert ab.atk_runs == []


def test_ab_result_aggregates():
    ab = run_ab(tiny_config(), runs=2)
    assert 0.0 <= ab.af_overall <= 1.0
    assert 0.0 <= ab.atk_overall <= 1.0
    assert len(ab.af_bin_rates) == 2
    drop = ab.drop_rate()
    assert drop is None or -1.0 <= drop <= 1.0


def test_ab_result_summary_is_readable():
    ab = run_ab(tiny_config(), runs=1)
    text = ab.summary()
    assert "af=" in text and "atk=" in text


def test_multiprocess_matches_sequential():
    config = tiny_config()
    seq = run_ab(config, runs=2, processes=1)
    par = run_ab(config, runs=2, processes=4)
    assert [r.overall_rate for r in seq.af_runs] == [
        r.overall_rate for r in par.af_runs
    ]
    assert [r.overall_rate for r in seq.atk_runs] == [
        r.overall_rate for r in par.atk_runs
    ]


def test_invalid_runs_rejected():
    with pytest.raises(ValueError):
        run_ab(tiny_config(), runs=0)


def test_cumulative_drops_length_matches_bins():
    ab = run_ab(tiny_config(), runs=1)
    assert len(ab.cumulative_drops()) == len(ab.af_bin_rates)
