"""A/B contract of the batched fleet path (``fleet_use_batched``).

Two-sided contract, mirroring the spatial-index knob's:

* ``fleet_use_batched=False`` (the default) is *bit-identical* to the
  pre-refactor seed goldens — the batched machinery must be invisible
  until opted into (its RNG stream is never touched on the legacy path).
* ``fleet_use_batched=True`` is *outcome-equivalent*: same traffic, same
  workload, same attack geometry, statistically indistinguishable beacon
  coverage — so PDR, frame counts and the ledger's drop breakdown agree
  within sampling tolerance even though the beacon jitter draws come from
  a different (numpy) stream.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_single
from repro.experiments.world import World
from repro.observability.ledger import PacketLedger
from tests.experiments._golden_capture import outcome_digest
from tests.experiments.test_seed_equivalence import GOLDEN


@pytest.mark.slow
def test_legacy_knob_is_bit_identical_to_seed_golden():
    """Explicitly passing the default knob must reproduce the golden digest
    captured before the fleet refactor existed."""
    config = ExperimentConfig.inter_area_default(duration=20.0, seed=7).with_(
        fleet_use_batched=False
    )
    result = run_single(config, attacked=False)
    expected = GOLDEN["inter-af"]
    assert outcome_digest(result) == expected["digest"]
    assert result.overall_rate == expected["overall_rate"]
    assert int(result.extras["frames_sent"]) == expected["frames_sent"]
    assert int(result.extras["frames_delivered"]) == expected["frames_delivered"]


@pytest.mark.slow
@pytest.mark.parametrize("attacked", [False, True])
def test_batched_path_is_outcome_equivalent(attacked):
    """Batched vs per-object on the fig-7 scenario: same packets sourced,
    PDR within sampling tolerance, beacon/frame volumes within a few %."""
    config = ExperimentConfig.inter_area_default(duration=20.0, seed=7)
    results = {}
    for batched in (False, True):
        cfg = config.with_(fleet_use_batched=batched)
        results[batched] = run_single(cfg, attacked=attacked)
    legacy, batched = results[False], results[True]
    # The workload stream is untouched by the fleet path: the exact same
    # packets are sourced at the exact same times.
    assert batched.n_packets == legacy.n_packets
    # PDR: different beacon jitter realisations can flip individual
    # packets; allow two of the 19 to differ.
    assert abs(batched.overall_rate - legacy.overall_rate) <= 2.0 / 19.0 + 1e-9
    # Beacon coverage: same fleet, same cadence contract, so accepted
    # beacon counts agree within a few percent.
    legacy_acc = legacy.extras["stats_router_beacons_accepted"]
    batched_acc = batched.extras["stats_router_beacons_accepted"]
    assert batched_acc > 0
    assert abs(batched_acc - legacy_acc) / legacy_acc < 0.05
    for key in ("frames_sent", "frames_delivered"):
        assert abs(batched.extras[key] - legacy.extras[key]) / legacy.extras[
            key
        ] < 0.05


@pytest.mark.slow
def test_batched_attack_still_bites():
    """The inter-area interception must degrade the batched PDR like the
    per-object one: the mast sniffs real frames off the batched tick."""
    config = ExperimentConfig.inter_area_default(duration=20.0, seed=7).with_(
        fleet_use_batched=True
    )
    attack_free = run_single(config, attacked=False)
    attacked = run_single(config, attacked=True)
    assert attacked.extras["frames_sniffed"] > 0
    assert attacked.extras["replays_sent"] > 0
    assert attacked.overall_rate < attack_free.overall_rate - 0.15


@pytest.mark.slow
def test_batched_ledger_conservation():
    """Drop-breakdown conservation on the batched path: every sourced
    packet has exactly one terminal outcome in the ledger."""
    config = ExperimentConfig.inter_area_default(duration=20.0, seed=7).with_(
        fleet_use_batched=True
    )
    ledger = PacketLedger()
    result = run_single(config, attacked=True, ledger=ledger)
    assert result.drop_breakdown is not None
    assert sum(result.drop_breakdown.values()) == result.n_packets
    assert result.drop_breakdown.get("delivered", 0) == round(
        result.overall_rate * result.n_packets
    )


def test_tiny_batched_world_smoke():
    """Cheap non-slow sanity: a small batched world runs, beacons flow,
    positions stay consistent under the runtime invariant checker."""
    config = ExperimentConfig.inter_area_default(duration=6.0, seed=3).with_(
        fleet_use_batched=True,
        invariant_check_interval=1.0,
    )
    config = config.with_(
        road=config.road.__class__(length=600.0, lanes_per_direction=1)
    )
    world = World(config, attacked=False)
    world.run()
    assert world.fleet is not None and len(world.fleet) > 0
    assert world.fleet_scheduler is not None
    assert world.fleet_scheduler.beacons_sent > 0
    totals = world.protocol_stat_totals()
    assert totals["router_beacons_accepted"] > 0
    # The checker raises InvariantViolation on any inconsistency, so
    # completed sweeps prove grid/LocT/queue consistency in batched mode.
    assert world.invariant_checker is not None
    assert world.invariant_checker.checks_run > 0


@pytest.mark.slow
def test_batched_beacons_pass_through_gps_fault_hook():
    """Regression for a suspected batched-path hole: fleet beacons must run
    the fault layer's ``pv_fault`` transform exactly like per-node beacons
    (``World._make_fleet_beacon`` applies it before signing).  Both paths
    must report a comparable volume of faulted beacons."""
    from repro.faults import GpsFaultPlan
    from repro.faults.plan import FaultPlan

    config = ExperimentConfig.inter_area_default(duration=20.0, seed=7).with_(
        faults=FaultPlan(gps=GpsFaultPlan(error_stddev=50.0))
    )
    counts = {}
    for batched in (False, True):
        result = run_single(
            config.with_(fleet_use_batched=batched), attacked=False
        )
        counts[batched] = result.extras["fault_gps_faulted_beacons"]
    assert counts[False] > 0
    assert counts[True] > 0
    # Same beacon cadence contract, so the faulted-beacon volumes agree
    # within a few percent (different jitter streams).
    assert abs(counts[True] - counts[False]) / counts[False] < 0.10


@pytest.mark.slow
@pytest.mark.parametrize("attacked", [False, True])
def test_batched_path_is_outcome_equivalent_with_obstructions(attacked):
    """The urban scenario registers a shadowing obstruction, which routes
    the batched tick through the vectorised ``Channel.block_mask`` filter
    while the legacy path checks pairs one at a time — the two must stay
    outcome-equivalent."""
    config = ExperimentConfig.inter_area_default(duration=20.0, seed=7).urbanized(
        streets_x=3, streets_y=3, block_size=200.0, inter_vehicle_space=80.0
    )
    results = {}
    for batched in (False, True):
        cfg = config.with_(fleet_use_batched=batched)
        results[batched] = run_single(cfg, attacked=attacked)
    legacy, batched = results[False], results[True]
    assert batched.n_packets == legacy.n_packets
    assert abs(batched.overall_rate - legacy.overall_rate) <= (
        3.0 / max(legacy.n_packets, 1) + 1e-9
    )
    legacy_acc = legacy.extras["stats_router_beacons_accepted"]
    batched_acc = batched.extras["stats_router_beacons_accepted"]
    assert batched_acc > 0
    assert abs(batched_acc - legacy_acc) / legacy_acc < 0.10
