"""Seed-paired equivalence regression for the spatial-index refactor.

The GOLDEN digests below were captured from the pre-refactor channel
(full O(N) numpy scan, list-ordered delivery) with
``tests/experiments/_golden_capture.py``.  They hash every
full-precision field of every :class:`PacketOutcome`, so they only
reproduce if the grid-backed channel preserves the exact delivery order
and RNG draw order of the original implementation — the core
correctness contract of this optimisation.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_single
from tests.experiments._golden_capture import outcome_digest

GOLDEN = {
    "inter-af": {
        "digest": "23510921f03315edaeb840fbb45e273d0cdd0be016f609bec741bee2ef8867d5",
        "n_packets": 19,
        "overall_rate": 0.6842105263157895,
        "frames_sent": 1855,
        "frames_delivered": 103302,
        "unicast_lost": 6,
    },
    "inter-atk": {
        "digest": "9954f7d985bb09c84074b38e4a1d642f72c2e342d5474658946b47f290ca4c0b",
        "n_packets": 19,
        "overall_rate": 0.3684210526315789,
        "frames_sent": 2068,
        "frames_delivered": 114610,
        "unicast_lost": 12,
    },
    "intra-atk": {
        "digest": "d728cf748fc7231248e4692d3672770bd9d16b081b08f5d964b465b89482068f",
        "n_packets": 19,
        "overall_rate": 0.6168121288234051,
        "frames_sent": 1805,
        "frames_delivered": 108404,
        "unicast_lost": 0,
    },
    "lossy-af": {
        "digest": "350482c57b47229534111fcbc3696de73932ff01a034252fbb1b4585d61439fb",
        "n_packets": 19,
        "overall_rate": 0.42105263157894735,
        "frames_sent": 1830,
        "frames_delivered": 97880,
        "unicast_lost": 4,
    },
}


def _configs():
    inter = ExperimentConfig.inter_area_default(duration=20.0, seed=7)
    intra = ExperimentConfig.intra_area_default(duration=20.0, seed=7)
    lossy = inter.with_(channel_loss_rate=0.05)
    return {
        "inter-af": (inter, False),
        "inter-atk": (inter, True),
        "intra-atk": (intra, True),
        "lossy-af": (lossy, False),
    }


@pytest.mark.slow
@pytest.mark.parametrize("label", sorted(GOLDEN))
def test_grid_channel_reproduces_pre_refactor_golden(label):
    config, attacked = _configs()[label]
    result = run_single(config, attacked=attacked)
    expected = GOLDEN[label]
    assert outcome_digest(result) == expected["digest"]
    assert result.n_packets == expected["n_packets"]
    assert result.overall_rate == expected["overall_rate"]
    assert int(result.extras["frames_sent"]) == expected["frames_sent"]
    assert (
        int(result.extras["frames_delivered"]) == expected["frames_delivered"]
    )
    assert int(result.extras["unicast_lost"]) == expected["unicast_lost"]


@pytest.mark.slow
def test_grid_and_scan_modes_are_bit_identical():
    """The spatial index must be a pure optimisation: disabling it must
    produce the exact same packet outcomes, frame counts, and stats."""
    config = ExperimentConfig.inter_area_default(duration=15.0, seed=21)
    results = {}
    for use_grid in (True, False):
        cfg = config.with_(channel_use_spatial_index=use_grid)
        result = run_single(cfg, attacked=True)
        results[use_grid] = (
            outcome_digest(result),
            result.overall_rate,
            int(result.extras["frames_sent"]),
            int(result.extras["frames_delivered"]),
            int(result.extras["unicast_lost"]),
        )
    assert results[True] == results[False]
