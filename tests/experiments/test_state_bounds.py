"""State-growth fixes must not change packet outcomes.

LocT purging and CBF done-set expiry are pure memory reclamation: expired
LocT entries were already invisible to routing, and a CBF duplicate entry
is only dropped once its packet cannot legally recur (lifetime + grace).
The golden test runs the same seeded world with the reclamation enabled
and disabled and requires bit-identical metrics; the bounds test asserts
the retained state actually stays within its documented windows.
"""

import dataclasses

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_single
from repro.experiments.world import World
from repro.geonet.cbf import CbfForwarder
from repro.geonet.guc import UnicastService
from repro.geonet.loct import LocationTable
from tests.experiments._golden_capture import outcome_digest


def short_lifetime_config(kind, *, duration):
    """A config whose LocT TTL and packet lifetime are far below the run
    duration, so purges and sweeps actually fire during the run."""
    factory = (
        ExperimentConfig.intra_area_default
        if kind == "intra"
        else ExperimentConfig.inter_area_default
    )
    config = factory(duration=duration, seed=5)
    return config.with_(
        road=dataclasses.replace(config.road, length=1500.0),
        geonet=dataclasses.replace(
            config.geonet, loct_ttl=6.0, default_lifetime=5.0
        ),
    )


def comparable(result):
    """Everything deterministic about a run.

    ``outcome_digest`` hashes every behavioural outcome field at full
    precision but excludes ``packet_id`` (it embeds the link-layer address,
    which comes from a process-global counter and so shifts between runs in
    the same process); wall-clock extras are excluded for the same reason.
    """
    extras = {
        k: v
        for k, v in result.extras.items()
        if k not in ("wall_time_s", "events_per_wall_sec")
    }
    return (
        result.seed,
        result.attacked,
        result.binned,
        result.overall_rate,
        result.n_packets,
        outcome_digest(result),
        extras,
    )


@pytest.mark.parametrize("kind", ["intra", "inter"])
@pytest.mark.parametrize("attacked", [False, True])
def test_reclamation_is_outcome_invariant(kind, attacked, monkeypatch):
    config = short_lifetime_config(kind, duration=30.0)
    with_fix = run_single(config, attacked=attacked)

    monkeypatch.setattr(LocationTable, "maybe_purge", lambda self, now: 0)
    monkeypatch.setattr(CbfForwarder, "_sweep_done", lambda self, now: None)
    monkeypatch.setattr(UnicastService, "_sweep", lambda self, now: None)
    without_fix = run_single(config, attacked=attacked)

    assert comparable(with_fix) == comparable(without_fix)


def _all_nodes(world):
    return list(world.nodes.values()) + list(world.dest_nodes)


def _state_totals(world):
    return (
        sum(len(n.router.loct) for n in _all_nodes(world)),
        sum(len(n.router.cbf._done) for n in _all_nodes(world)),
    )


def test_loct_and_done_set_stay_bounded(monkeypatch):
    """Long-run state obeys the reclamation invariants and is strictly
    smaller than the pre-fix unbounded behaviour on the same run.

    The reclamation is opportunistic (LocT purges on beacon updates, CBF
    sweeps on broadcast receptions), so the invariant is relative to each
    structure's own last reclamation point, not wall clock: nothing that
    was already dead at the last purge/sweep may still be retained.
    """
    config = short_lifetime_config("intra", duration=60.0)
    world = World(config, attacked=False, seed=5)
    world.run()
    assert world.nodes, "expected live vehicles at the end of the run"
    for node in _all_nodes(world):
        loct = node.router.loct
        last_purge = loct._next_purge_at - loct.purge_interval
        for entry in loct._entries.values():
            assert entry.expires_at >= last_purge
        cbf = node.router.cbf
        last_sweep = cbf._next_done_sweep - 5.0  # _DONE_SWEEP_INTERVAL
        for drop_after in cbf._done.values():
            assert drop_after >= last_sweep
    fixed_loct, fixed_done = _state_totals(world)

    # The identical seeded run with reclamation disabled: every vehicle
    # that ever beaconed and every packet ever flooded stays resident.
    monkeypatch.setattr(LocationTable, "maybe_purge", lambda self, now: 0)
    monkeypatch.setattr(CbfForwarder, "_sweep_done", lambda self, now: None)
    unbounded = World(config, attacked=False, seed=5)
    unbounded.run()
    grown_loct, grown_done = _state_totals(unbounded)
    assert fixed_loct < grown_loct
    assert fixed_done < grown_done
