"""Shared fixtures: a wired-up mini GeoNetworking testbed.

Most protocol tests want "a few nodes on a channel with credentials"; the
``testbed`` fixture provides exactly that without the full experiment World.
"""

from __future__ import annotations

import pytest

from repro.geo.position import Position
from repro.geonet.config import GeoNetConfig
from repro.geonet.node import GeoNode, StaticMobility
from repro.radio.channel import BroadcastChannel
from repro.radio.technology import DSRC
from repro.security.ca import CertificateAuthority
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


class Testbed:
    """A simulator + channel + CA with helpers to place static nodes."""

    def __init__(self, seed: int = 42, config: GeoNetConfig | None = None):
        self.sim = Simulator()
        self.streams = RandomStreams(seed)
        self.channel = BroadcastChannel(self.sim, self.streams)
        self.ca = CertificateAuthority()
        self.config = config or GeoNetConfig(dist_max=DSRC.max_range_m)
        self._counter = 0

    def add_node(
        self,
        x: float,
        y: float = 0.0,
        *,
        tx_range: float = DSRC.nlos_median_m,
        beaconing: bool = True,
        config: GeoNetConfig | None = None,
        name: str | None = None,
        ledger=None,
    ) -> GeoNode:
        self._counter += 1
        node_name = name or f"node{self._counter}"
        return GeoNode(
            sim=self.sim,
            channel=self.channel,
            config=config or self.config,
            credentials=self.ca.enroll(node_name),
            mobility=StaticMobility(Position(x, y)),
            tx_range=tx_range,
            rng=self.streams.get(f"beacon:{node_name}"),
            beaconing=beaconing,
            name=node_name,
            ledger=ledger,
        )

    def chain(self, n: int, spacing: float, **kwargs) -> list:
        """n static nodes spaced ``spacing`` metres apart along +x."""
        return [self.add_node(i * spacing, **kwargs) for i in range(n)]

    def warm_up(self, seconds: float = 8.0) -> None:
        """Run long enough for everyone to have beaconed at least twice."""
        self.sim.run_until(self.sim.now + seconds)


@pytest.fixture
def testbed() -> Testbed:
    return Testbed()


@pytest.fixture
def make_testbed():
    def factory(seed: int = 42, config: GeoNetConfig | None = None) -> Testbed:
        return Testbed(seed=seed, config=config)

    return factory
