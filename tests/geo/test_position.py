"""Tests for positions and position vectors."""

import math

import pytest

from repro.geo.position import Position, PositionVector


def test_distance_is_euclidean():
    assert Position(0, 0).distance_to(Position(3, 4)) == 5.0


def test_distance_is_symmetric():
    a, b = Position(1, 2), Position(-4, 7)
    assert a.distance_to(b) == b.distance_to(a)


def test_distance_to_self_is_zero():
    p = Position(12.5, -3.0)
    assert p.distance_to(p) == 0.0


def test_translated_offsets_coordinates():
    assert Position(1, 2).translated(3, -1) == Position(4, 1)


def test_translated_default_dy_zero():
    assert Position(1, 2).translated(5) == Position(6, 2)


def test_position_is_immutable():
    with pytest.raises(AttributeError):
        Position(0, 0).x = 5


def test_position_unpacks():
    x, y = Position(3.0, 7.0)
    assert (x, y) == (3.0, 7.0)


def test_pv_rejects_negative_speed():
    with pytest.raises(ValueError):
        PositionVector(Position(0, 0), speed=-1.0, heading=0.0, timestamp=0.0)


def test_pv_velocity_east():
    pv = PositionVector(Position(0, 0), speed=10.0, heading=0.0, timestamp=0.0)
    vx, vy = pv.velocity
    assert vx == pytest.approx(10.0)
    assert vy == pytest.approx(0.0)


def test_pv_velocity_west():
    pv = PositionVector(Position(0, 0), speed=10.0, heading=math.pi, timestamp=0.0)
    vx, vy = pv.velocity
    assert vx == pytest.approx(-10.0)
    assert abs(vy) < 1e-9


def test_pv_extrapolate_moves_with_velocity():
    pv = PositionVector(Position(100, 0), speed=30.0, heading=0.0, timestamp=10.0)
    later = pv.extrapolate(12.0)
    assert later.x == pytest.approx(160.0)
    assert later.y == pytest.approx(0.0)


def test_pv_extrapolate_backwards_in_time():
    pv = PositionVector(Position(100, 0), speed=30.0, heading=0.0, timestamp=10.0)
    earlier = pv.extrapolate(9.0)
    assert earlier.x == pytest.approx(70.0)


def test_pv_age():
    pv = PositionVector(Position(0, 0), speed=0.0, heading=0.0, timestamp=5.0)
    assert pv.age(8.0) == pytest.approx(3.0)


def test_pv_is_immutable():
    pv = PositionVector(Position(0, 0), speed=1.0, heading=0.0, timestamp=0.0)
    with pytest.raises(AttributeError):
        pv.speed = 2.0
