"""Tests for distance helpers used by the forwarding algorithms."""

import pytest

from repro.geo.areas import CircularArea
from repro.geo.distance import distance, distance_to_area, progress_toward
from repro.geo.position import Position


def test_distance_matches_position_method():
    a, b = Position(0, 0), Position(6, 8)
    assert distance(a, b) == a.distance_to(b) == 10.0


def test_distance_to_area_uses_center_not_boundary():
    area = CircularArea(Position(100, 0), 50.0)
    # 60 m from the centre but inside the area: centre distance is used.
    assert distance_to_area(Position(60, 0), area) == pytest.approx(40.0)


def test_progress_positive_when_candidate_closer():
    area = CircularArea(Position(100, 0), 10.0)
    assert progress_toward(Position(0, 0), Position(50, 0), area) == pytest.approx(50.0)


def test_progress_negative_when_candidate_farther():
    area = CircularArea(Position(100, 0), 10.0)
    assert progress_toward(Position(50, 0), Position(0, 0), area) == pytest.approx(-50.0)


def test_progress_zero_for_same_distance():
    area = CircularArea(Position(0, 0), 10.0)
    assert progress_toward(Position(5, 0), Position(0, 5), area) == pytest.approx(0.0)
