"""Tests for destination areas."""

import pytest

from repro.geo.areas import CircularArea, RectangularArea, RoadSegmentArea
from repro.geo.position import Position


class TestCircularArea:
    def test_contains_center(self):
        area = CircularArea(Position(10, 10), 5.0)
        assert area.contains(Position(10, 10))

    def test_contains_boundary_point(self):
        area = CircularArea(Position(0, 0), 5.0)
        assert area.contains(Position(5, 0))

    def test_excludes_outside_point(self):
        area = CircularArea(Position(0, 0), 5.0)
        assert not area.contains(Position(5.01, 0))

    def test_center_property(self):
        assert CircularArea(Position(3, 4), 1.0).center == Position(3, 4)

    def test_distance_from_inside_is_zero(self):
        area = CircularArea(Position(0, 0), 10.0)
        assert area.distance_from(Position(3, 4)) == 0.0

    def test_distance_from_outside(self):
        area = CircularArea(Position(0, 0), 5.0)
        assert area.distance_from(Position(13, 0)) == pytest.approx(8.0)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            CircularArea(Position(0, 0), -1.0)

    def test_zero_radius_contains_only_center(self):
        area = CircularArea(Position(1, 1), 0.0)
        assert area.contains(Position(1, 1))
        assert not area.contains(Position(1, 1.001))


class TestRectangularArea:
    def test_contains_interior(self):
        area = RectangularArea(0, 10, 0, 4)
        assert area.contains(Position(5, 2))

    def test_contains_corners(self):
        area = RectangularArea(0, 10, 0, 4)
        for corner in (Position(0, 0), Position(10, 4), Position(0, 4), Position(10, 0)):
            assert area.contains(corner)

    def test_excludes_outside(self):
        area = RectangularArea(0, 10, 0, 4)
        assert not area.contains(Position(-0.1, 2))
        assert not area.contains(Position(5, 4.1))

    def test_center(self):
        assert RectangularArea(0, 10, 0, 4).center == Position(5, 2)

    def test_distance_from_inside_zero(self):
        assert RectangularArea(0, 10, 0, 4).distance_from(Position(5, 2)) == 0.0

    def test_distance_from_side(self):
        assert RectangularArea(0, 10, 0, 4).distance_from(Position(15, 2)) == 5.0

    def test_distance_from_corner_is_diagonal(self):
        area = RectangularArea(0, 10, 0, 4)
        assert area.distance_from(Position(13, 8)) == pytest.approx(5.0)

    def test_degenerate_rectangle_rejected(self):
        with pytest.raises(ValueError):
            RectangularArea(10, 0, 0, 4)
        with pytest.raises(ValueError):
            RectangularArea(0, 10, 4, 0)

    def test_zero_area_rectangle_is_allowed_line(self):
        area = RectangularArea(0, 10, 2, 2)
        assert area.contains(Position(5, 2))
        assert not area.contains(Position(5, 2.1))


class TestRoadSegmentArea:
    def test_covers_whole_segment(self):
        area = RoadSegmentArea(length=4000.0, total_width=10.0)
        assert area.contains(Position(0, 0))
        assert area.contains(Position(4000, 10))
        assert not area.contains(Position(4000.1, 5))

    def test_y_offset(self):
        area = RoadSegmentArea(length=100.0, total_width=10.0, y_offset=5.0)
        assert not area.contains(Position(50, 4))
        assert area.contains(Position(50, 12))

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            RoadSegmentArea(length=0, total_width=10)
        with pytest.raises(ValueError):
            RoadSegmentArea(length=100, total_width=0)
