"""Tests for periodic processes."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess, every


def test_every_fires_at_fixed_period():
    sim = Simulator()
    times = []
    every(sim, 1.0, lambda: times.append(sim.now))
    sim.run_until(4.5)
    assert times == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_start_delay_offsets_first_tick():
    sim = Simulator()
    times = []
    every(sim, 1.0, lambda: times.append(sim.now), start_delay=0.5)
    sim.run_until(3.0)
    assert times == [0.5, 1.5, 2.5]


def test_stop_prevents_future_ticks():
    sim = Simulator()
    times = []
    process = every(sim, 1.0, lambda: times.append(sim.now))
    sim.run_until(2.5)
    process.stop()
    sim.run_until(6.0)
    assert times == [0.0, 1.0, 2.0]
    assert process.stopped


def test_callback_may_stop_its_own_process():
    sim = Simulator()
    count = []

    def tick():
        count.append(sim.now)
        if len(count) == 3:
            process.stop()

    process = every(sim, 1.0, tick)
    sim.run_until(10.0)
    assert len(count) == 3


def test_callback_return_value_overrides_next_delay():
    sim = Simulator()
    times = []

    def tick():
        times.append(sim.now)
        return 2.0  # override the 1.0 period

    PeriodicProcess(sim, 1.0, tick)
    sim.run_until(5.0)
    assert times == [0.0, 2.0, 4.0]


def test_integer_return_does_not_override_delay():
    """Only genuine floats override the period — callbacks returning
    counters or addresses must not silently reschedule themselves."""
    sim = Simulator()
    times = []

    def tick():
        times.append(sim.now)
        return 1_000_000  # an int, e.g. an address

    PeriodicProcess(sim, 1.0, tick)
    sim.run_until(3.0)
    assert times == [0.0, 1.0, 2.0, 3.0]


def test_bool_return_does_not_override_delay():
    sim = Simulator()
    times = []

    def tick():
        times.append(sim.now)
        return True

    PeriodicProcess(sim, 1.0, tick)
    sim.run_until(2.0)
    assert times == [0.0, 1.0, 2.0]


def test_jitter_is_added_to_period():
    sim = Simulator()
    times = []
    PeriodicProcess(
        sim, 1.0, lambda: times.append(sim.now), jitter=lambda: 0.25
    )
    sim.run_until(3.0)
    assert times == [0.0, 1.25, 2.5]


def test_non_positive_period_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        PeriodicProcess(sim, 0.0, lambda: None)
    with pytest.raises(ValueError):
        PeriodicProcess(sim, -1.0, lambda: None)


def test_stop_is_idempotent():
    sim = Simulator()
    process = every(sim, 1.0, lambda: None)
    process.stop()
    process.stop()
    assert process.stopped
