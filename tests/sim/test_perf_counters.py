"""Tests for the Simulator's wall-clock performance counters."""

from repro.sim.engine import Simulator


def test_wall_time_accumulates_across_run_calls():
    sim = Simulator()
    assert sim.wall_time_s == 0.0
    for k in range(1, 101):
        sim.schedule_at(k * 0.01, lambda: None)
    sim.run_until(0.5)
    first = sim.wall_time_s
    assert first > 0.0
    sim.run()
    assert sim.wall_time_s >= first
    assert sim.events_fired == 100


def test_events_per_wall_sec_guarded_against_zero():
    sim = Simulator()
    assert sim.events_per_wall_sec == 0.0  # nothing ran yet
    sim.schedule_at(0.0, lambda: None)
    sim.run()
    assert sim.events_per_wall_sec > 0.0


def test_step_counts_events_but_only_run_loops_count_wall_time():
    sim = Simulator()
    sim.schedule_at(0.0, lambda: None)
    assert sim.step() is True
    assert sim.events_fired == 1
    assert sim.wall_time_s == 0.0  # wall_time_s covers run()/run_until() only
