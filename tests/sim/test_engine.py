"""Tests for the discrete-event simulator core."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_starts_at_custom_time():
    assert Simulator(start_time=5.0).now == 5.0


def test_schedule_and_run_until_fires_in_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(3.0, fired.append, "c")
    sim.run_until(10.0)
    assert fired == ["a", "b", "c"]


def test_run_until_advances_clock_to_end_time():
    sim = Simulator()
    sim.run_until(7.5)
    assert sim.now == 7.5


def test_events_at_end_time_fire():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, 1)
    sim.run_until(5.0)
    assert fired == [1]


def test_events_beyond_end_time_stay_queued():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, 1)
    sim.run_until(4.0)
    assert fired == []
    sim.run_until(6.0)
    assert fired == [1]


def test_simultaneous_events_fire_in_priority_then_fifo_order():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "second", priority=0)
    sim.schedule(1.0, fired.append, "third", priority=0)
    sim.schedule(1.0, fired.append, "first", priority=-5)
    sim.run_until(2.0)
    assert fired == ["first", "second", "third"]


def test_clock_is_event_time_inside_callback():
    sim = Simulator()
    seen = []
    sim.schedule(3.25, lambda: seen.append(sim.now))
    sim.run_until(10.0)
    assert seen == [3.25]


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.run_until(5.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(4.0, lambda: None)


def test_scheduling_nan_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(float("nan"), lambda: None)


def test_run_until_backwards_raises():
    sim = Simulator()
    sim.run_until(5.0)
    with pytest.raises(SimulationError):
        sim.run_until(3.0)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, 1)
    handle.cancel()
    sim.run_until(2.0)
    assert fired == []
    assert handle.cancelled


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert handle.cancelled


def test_events_can_schedule_new_events():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(1.0, fired.append, "second")

    sim.schedule(1.0, first)
    sim.run_until(5.0)
    assert fired == ["first", "second"]


def test_zero_delay_event_fires_at_current_time():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: sim.schedule(0.0, fired.append, sim.now))
    sim.run_until(2.0)
    assert fired == [1.0]


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, fired.append, 3)
    sim.run()
    assert fired == [1]
    assert sim.pending == 1


def test_run_drains_all_events():
    sim = Simulator()
    fired = []
    for t in (3.0, 1.0, 2.0):
        sim.schedule(t, fired.append, t)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]
    assert sim.pending == 0


def test_step_fires_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert not sim.step()


def test_step_skips_cancelled_events():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    handle.cancel()
    assert sim.step()
    assert fired == [2]


def test_events_fired_counter():
    sim = Simulator()
    for t in range(5):
        sim.schedule(float(t + 1), lambda: None)
    sim.run_until(10.0)
    assert sim.events_fired == 5


def test_event_args_are_passed():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda a, b: seen.append((a, b)), "x", 2)
    sim.run_until(2.0)
    assert seen == [("x", 2)]


def test_resume_after_run_until():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(10.0, fired.append, 10)
    sim.run_until(5.0)
    sim.run_until(15.0)
    assert fired == [1, 10]


# ----------------------------------------------------------------------
# schedule_many (bulk insert)
# ----------------------------------------------------------------------
def test_schedule_many_matches_repeated_schedule():
    """Bulk insert must be bit-identical in firing order to N schedule()s."""

    def build(entries, bulk):
        sim = Simulator()
        fired = []
        # An anchor event between the batches exercises interleaving.
        sim.schedule(1.5, fired.append, "anchor")
        if bulk:
            sim.schedule_many(
                [(d, fired.append, label) for d, label in entries]
            )
        else:
            for d, label in entries:
                sim.schedule(d, fired.append, label)
        sim.run_until(10.0)
        return fired

    entries = [(2.0, "b"), (1.0, "a"), (2.0, "b2"), (0.5, "z"), (1.5, "tie")]
    assert build(entries, bulk=True) == build(entries, bulk=False)


def test_schedule_many_same_time_fires_in_insertion_order():
    sim = Simulator()
    fired = []
    sim.schedule_many([(1.0, fired.append, k) for k in range(50)])
    sim.run_until(2.0)
    assert fired == list(range(50))


def test_schedule_many_small_batch_into_big_heap():
    """The push-vs-heapify heuristic must not change ordering."""
    sim = Simulator()
    fired = []
    for k in range(100):
        sim.schedule(float(k) + 10.0, fired.append, f"old-{k}")
    sim.schedule_many([(1.0, fired.append, "new-a"), (2.0, fired.append, "new-b")])
    sim.run_until(5.0)
    assert fired == ["new-a", "new-b"]


def test_schedule_many_returns_cancellable_handles():
    sim = Simulator()
    fired = []
    handles = sim.schedule_many(
        [(1.0, fired.append, "a"), (2.0, fired.append, "b")]
    )
    assert [h.time for h in handles] == [1.0, 2.0]
    handles[0].cancel()
    sim.run_until(3.0)
    assert fired == ["b"]


def test_schedule_many_rejects_negative_delay_and_nan():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_many([(-0.1, lambda: None)])
    with pytest.raises(SimulationError):
        sim.schedule_many([(float("nan"), lambda: None)])


def test_schedule_many_empty_batch_is_noop():
    sim = Simulator()
    assert sim.schedule_many([]) == []
    assert sim.pending == 0


def test_schedule_many_interleaves_with_schedule_fire():
    """seq numbering stays shared across all scheduling APIs."""
    sim = Simulator()
    fired = []
    sim.schedule_fire(1.0, fired.append, "fire-1")
    sim.schedule_many([(1.0, fired.append, "bulk-1")])
    sim.schedule_fire(1.0, fired.append, "fire-2")
    sim.run_until(2.0)
    assert fired == ["fire-1", "bulk-1", "fire-2"]
