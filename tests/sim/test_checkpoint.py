"""Unit tests for the checkpoint subsystem's building blocks.

World-level round trips and bit-identity live in
``tests/experiments/test_checkpoint_determinism.py``; this file covers the
primitives: restricted pickling, allocator capture, envelope integrity.
"""

import pickle

import pytest

from repro.radio.channel import address_state
from repro.radio.frames import frame_id_state
from repro.sim.checkpoint import (
    CHECKPOINT_KIND,
    CHECKPOINT_VERSION,
    CheckpointError,
    audit_blob,
    capture_global_state,
    decode_envelope,
    encode_envelope,
    restore_global_state,
    restricted_dumps,
    snapshot_world,
)
from repro.traffic.vehicle import vehicle_id_state


# ----------------------------------------------------------------------
# restricted pickling
# ----------------------------------------------------------------------
def module_level_callback():
    return "ok"


class CallableState:
    def __call__(self):
        return "ok"


def test_restricted_dumps_accepts_restorable_callables():
    payload = {
        "bound": CallableState().__call__,
        "module_fn": module_level_callback,
        "instance": CallableState(),
    }
    restored = pickle.loads(restricted_dumps(payload))
    assert restored["module_fn"]() == "ok"
    assert restored["instance"]() == "ok"


def test_restricted_dumps_rejects_lambda_with_descriptive_error():
    with pytest.raises(CheckpointError, match="lambda"):
        restricted_dumps({"cb": lambda: 1})


def test_restricted_dumps_rejects_nested_function():
    def nested():
        return 1

    with pytest.raises(CheckpointError, match="nested"):
        restricted_dumps({"cb": nested})


class FakeWorldWithLambda:
    def __init__(self):
        self.callback = lambda: 1


def test_snapshot_world_wraps_unpicklable_graph_descriptively():
    with pytest.raises(CheckpointError, match="lambda"):
        snapshot_world(FakeWorldWithLambda())


def test_audit_blob_lists_pinned_globals():
    blob = restricted_dumps({"fn": module_level_callback})
    names = audit_blob(blob)
    assert any("module_level_callback" in name for name in names)


# ----------------------------------------------------------------------
# module-global allocator state
# ----------------------------------------------------------------------
def test_allocator_capture_restores_id_continuity():
    state = pickle.loads(pickle.dumps(capture_global_state()))
    v_next = next(vehicle_id_state())
    a_next = next(address_state())
    f_next = next(frame_id_state())
    restore_global_state(state)
    # the restored counters replay the ids the probe consumed
    assert next(vehicle_id_state()) == v_next
    assert next(address_state()) == a_next
    assert next(frame_id_state()) == f_next


# ----------------------------------------------------------------------
# envelopes
# ----------------------------------------------------------------------
def test_envelope_round_trip():
    blob = b"payload bytes" * 100
    envelope = encode_envelope(blob, sim_time=12.5, meta={"target": "t"})
    assert envelope["kind"] == CHECKPOINT_KIND
    assert envelope["version"] == CHECKPOINT_VERSION
    assert envelope["sim_time"] == 12.5
    assert envelope["target"] == "t"
    assert decode_envelope(envelope) == blob


def test_envelope_rejects_wrong_kind():
    envelope = encode_envelope(b"x", sim_time=0.0)
    envelope["kind"] = "result"
    with pytest.raises(CheckpointError, match="kind"):
        decode_envelope(envelope)


def test_envelope_rejects_unknown_version():
    envelope = encode_envelope(b"x", sim_time=0.0)
    envelope["version"] = CHECKPOINT_VERSION + 1
    with pytest.raises(CheckpointError, match="version"):
        decode_envelope(envelope)


def test_envelope_rejects_tampered_payload():
    blob = b"payload bytes" * 100
    envelope = encode_envelope(blob, sim_time=0.0)
    other = encode_envelope(b"different", sim_time=0.0)
    envelope["payload_b64"] = other["payload_b64"]
    with pytest.raises(CheckpointError, match="digest"):
        decode_envelope(envelope)


def test_envelope_rejects_garbage_payload():
    envelope = encode_envelope(b"x", sim_time=0.0)
    envelope["payload_b64"] = "%%% not base64 %%%"
    with pytest.raises(CheckpointError):
        decode_envelope(envelope)


def test_envelope_rejects_missing_payload():
    envelope = encode_envelope(b"x", sim_time=0.0)
    del envelope["payload_b64"]
    with pytest.raises(CheckpointError, match="payload"):
        decode_envelope(envelope)


def test_envelope_rejects_non_mapping():
    with pytest.raises(CheckpointError, match="mapping"):
        decode_envelope("not a dict")
