"""Tests for deterministic named random streams."""

from repro.sim.random import RandomStreams, _derive_seed


def test_same_name_returns_same_stream_object():
    streams = RandomStreams(1)
    assert streams.get("a") is streams.get("a")


def test_different_names_give_independent_streams():
    streams = RandomStreams(1)
    a = [streams.get("a").random() for _ in range(5)]
    b = [streams.get("b").random() for _ in range(5)]
    assert a != b


def test_same_seed_reproduces_draws():
    first = [RandomStreams(7).get("x").random() for _ in range(3)]
    second = [RandomStreams(7).get("x").random() for _ in range(3)]
    assert first == second


def test_different_seeds_differ():
    assert RandomStreams(1).get("x").random() != RandomStreams(2).get("x").random()


def test_stream_isolation_under_extra_consumers():
    """Adding a consumer of stream B must not change stream A's draws.

    This is the property that keeps A/B experiment runs paired.
    """
    solo = RandomStreams(5)
    a_only = [solo.get("traffic").random() for _ in range(10)]

    mixed = RandomStreams(5)
    mixed.get("attacker").random()  # an extra consumer appears
    a_mixed = []
    for i in range(10):
        a_mixed.append(mixed.get("traffic").random())
        mixed.get("attacker").random()  # interleaved draws
    assert a_only == a_mixed


def test_numpy_streams_deterministic():
    a = RandomStreams(3).get_numpy("n").normal(size=4)
    b = RandomStreams(3).get_numpy("n").normal(size=4)
    assert (a == b).all()


def test_numpy_stream_cached():
    streams = RandomStreams(3)
    assert streams.get_numpy("n") is streams.get_numpy("n")


def test_spawn_creates_independent_child():
    parent = RandomStreams(9)
    child = parent.spawn("worker")
    assert child.root_seed != parent.root_seed
    assert child.get("x").random() != parent.get("x").random()


def test_spawn_deterministic():
    a = RandomStreams(9).spawn("worker").get("x").random()
    b = RandomStreams(9).spawn("worker").get("x").random()
    assert a == b


def test_derive_seed_stable_and_name_sensitive():
    assert _derive_seed(1, "a") == _derive_seed(1, "a")
    assert _derive_seed(1, "a") != _derive_seed(1, "b")
    assert _derive_seed(1, "a") != _derive_seed(2, "a")
