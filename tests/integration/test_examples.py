"""Smoke tests that the runnable examples actually run."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart_example():
    out = run_example("quickstart.py")
    assert "attack-free baseline" in out
    assert "CBF flood reached 10/10 vehicles" in out
    assert "blocked vehicles:" in out


def test_collision_avoidance_example():
    out = run_example("collision_avoidance.py")
    assert "COLLISION" in out
    assert "no collision" in out


def test_custom_protocol_tuning_example():
    out = run_example("custom_protocol_tuning.py")
    assert "TO_MAX" in out
    assert "100%" in out


@pytest.mark.slow
def test_hazard_warning_example():
    out = run_example("hazard_warning.py", "40")
    assert "Fig12 case 2" in out


@pytest.mark.slow
def test_mitigation_evaluation_example():
    out = run_example("mitigation_evaluation.py", "20", "1")
    assert "plausibility check" in out
    assert "RHL-drop check" in out
