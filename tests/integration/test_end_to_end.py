"""End-to-end integration tests: miniature versions of the paper's claims.

These run full worlds (traffic + radio + GeoNetworking + attacker) at
reduced scale and assert the *direction* of every headline effect.  They are
the slowest tests in the suite (a few seconds each).
"""

import dataclasses


from repro.experiments import ExperimentConfig, run_ab
from repro.experiments.world import World


def inter_config(**overrides):
    config = ExperimentConfig.inter_area_default(duration=30.0, seed=21)
    road = dataclasses.replace(config.road, length=2500.0)
    return config.with_(road=road, **overrides)


def intra_config(**overrides):
    config = ExperimentConfig.intra_area_default(duration=30.0, seed=21)
    road = dataclasses.replace(config.road, length=2500.0)
    return config.with_(road=road, **overrides)


class TestInterAreaEndToEnd:
    def test_attack_reduces_reception(self):
        ab = run_ab(inter_config(), runs=1)
        assert ab.atk_overall < ab.af_overall

    def test_median_nlos_attacker_intercepts_nearly_everything(self):
        config = inter_config()
        config = config.with_(
            attack=dataclasses.replace(config.attack, attack_range=486.0)
        )
        ab = run_ab(config, runs=1)
        assert ab.atk_overall <= 0.05
        assert ab.af_overall > 0.2

    def test_larger_attack_range_does_not_weaken_the_attack(self):
        drops = {}
        for attack_range in (327.0, 486.0):
            config = inter_config()
            config = config.with_(
                attack=dataclasses.replace(
                    config.attack, attack_range=attack_range
                )
            )
            drops[attack_range] = run_ab(config, runs=1).drop_rate()
        assert drops[486.0] >= drops[327.0] - 0.05

    def test_attacker_triggers_unicast_losses(self):
        world = World(inter_config(), attacked=True, seed=5)
        world.run()
        baseline = World(inter_config(), attacked=False, seed=5)
        baseline.run()
        assert (
            world.channel.stats.unicast_lost
            > baseline.channel.stats.unicast_lost
        )

    def test_plausibility_check_recovers_reception(self):
        config = inter_config()
        config = config.with_(
            attack=dataclasses.replace(config.attack, attack_range=486.0)
        )
        plain = run_ab(config, runs=1)
        mitigated = run_ab(
            config.with_(
                geonet=config.geonet.with_mitigations(plausibility_check=True)
            ),
            runs=1,
        )
        assert mitigated.atk_overall > plain.atk_overall + 0.2

    def test_plausibility_check_helps_even_attack_free(self):
        config = inter_config()
        plain = run_ab(config, runs=1)
        mitigated = run_ab(
            config.with_(
                geonet=config.geonet.with_mitigations(plausibility_check=True)
            ),
            runs=1,
        )
        assert mitigated.af_overall >= plain.af_overall


class TestIntraAreaEndToEnd:
    def test_attack_free_flood_reaches_nearly_everyone(self):
        ab = run_ab(intra_config(), runs=1)
        assert ab.af_overall > 0.9

    def test_attack_blocks_a_third_of_the_road(self):
        ab = run_ab(intra_config(), runs=1)
        assert 0.1 < ab.drop_rate() < 0.7

    def test_los_range_attacker_is_weaker_than_nlos_median(self):
        drops = {}
        for attack_range in (486.0, 1283.0):
            config = intra_config()
            config = config.with_(
                attack=dataclasses.replace(
                    config.attack, attack_range=attack_range
                )
            )
            drops[attack_range] = run_ab(config, runs=1).drop_rate()
        assert drops[1283.0] < drops[486.0]

    def test_rhl_check_restores_reception(self):
        config = intra_config()
        plain = run_ab(config, runs=1)
        mitigated = run_ab(
            config.with_(geonet=config.geonet.with_mitigations(rhl_check=True)),
            runs=1,
        )
        assert mitigated.atk_overall > plain.atk_overall
        assert mitigated.atk_overall >= plain.af_overall - 0.15

    def test_blockage_is_directional(self):
        """Vehicles between the source and the attacker still receive; the
        blocked share is beyond the attacker."""
        world = World(intra_config(), attacked=True, seed=33)
        metrics = world.run()
        partial = [o for o in metrics.outcomes if 0.05 < o.success < 0.95]
        assert partial  # floods are cut, not annihilated


class TestFailureInjection:
    def test_runs_survive_nodes_leaving_mid_flood(self):
        """Vehicles retire during active floods without breaking timers."""
        config = intra_config()
        world = World(config, attacked=False, seed=8)
        world.run()
        # No stale state: every remaining node's buffers drain.
        for node in world.nodes.values():
            assert not node.is_shut_down

    def test_world_with_sparse_traffic_still_completes(self):
        config = intra_config()
        config = config.with_(
            road=dataclasses.replace(config.road, inter_vehicle_space=300.0)
        )
        ab = run_ab(config, runs=1)
        assert ab.af_overall >= 0.0  # completes without exceptions

    def test_zero_vehicle_world(self):
        config = inter_config()
        config = config.with_(
            road=dataclasses.replace(
                config.road, prepopulate=False, spawn=False
            )
        )
        world = World(config, attacked=True, seed=1)
        metrics = world.run()
        assert metrics.outcomes == []
